// Epilogue scaling (out = alpha * permute(in) + beta * out) across every
// kernel schema, including the transaction-count consequence of
// beta != 0: the output must be read back, doubling output-side traffic.
#include <gtest/gtest.h>

#include "core/ttlg.hpp"

namespace ttlg {
namespace {

struct EpilogueCase {
  Extents ext;
  std::vector<Index> perm;
  Schema expect;
};

class EpilogueAllSchemas : public ::testing::TestWithParam<int> {
 protected:
  static EpilogueCase pick(int i) {
    static const EpilogueCase cases[] = {
        {{6, 6, 6}, {0, 1, 2}, Schema::kCopy},
        {{64, 6, 8}, {0, 2, 1}, Schema::kFviMatchLarge},
        {{16, 8, 8}, {0, 2, 1}, Schema::kFviMatchSmall},
        {{40, 9, 40}, {2, 1, 0}, Schema::kOrthogonalDistinct},
        {{8, 2, 24, 24, 24}, {2, 1, 3, 0, 4}, Schema::kOrthogonalArbitrary},
    };
    return cases[i];
  }
};

TEST_P(EpilogueAllSchemas, AlphaBetaMathIsExact) {
  const EpilogueCase c = pick(GetParam());
  const Shape shape(c.ext);
  const Permutation perm(c.perm);
  const double alpha = 2.5, beta = -0.5;

  Tensor<double> host_in(shape);
  host_in.fill_iota();
  Tensor<double> host_out0(perm.apply(shape));
  host_out0.fill_random(11);

  sim::Device dev;
  auto in = dev.alloc_copy<double>(host_in.vec());
  auto out = dev.alloc_copy<double>(host_out0.vec());
  Plan plan = make_plan(dev, shape, perm);
  plan.execute<double>(in, out, alpha, beta);

  const Tensor<double> permuted = host_transpose(host_in, perm);
  for (Index i = 0; i < shape.volume(); ++i) {
    ASSERT_DOUBLE_EQ(out[i], alpha * permuted.at(i) + beta * host_out0.at(i))
        << to_string(plan.schema()) << " at " << i;
  }
}

TEST_P(EpilogueAllSchemas, AlphaOnlyScales) {
  const EpilogueCase c = pick(GetParam());
  const Shape shape(c.ext);
  const Permutation perm(c.perm);
  Tensor<double> host_in(shape);
  host_in.fill_iota();
  sim::Device dev;
  auto in = dev.alloc_copy<double>(host_in.vec());
  auto out = dev.alloc<double>(shape.volume());
  Plan plan = make_plan(dev, shape, perm);
  plan.execute<double>(in, out, 3.0, 0.0);
  const Tensor<double> permuted = host_transpose(host_in, perm);
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_DOUBLE_EQ(out[i], 3.0 * permuted.at(i));
}

INSTANTIATE_TEST_SUITE_P(Schemas, EpilogueAllSchemas, ::testing::Range(0, 5));

TEST(Epilogue, BetaReadsCostTransactions) {
  const Shape shape({64, 64});
  const Permutation perm({1, 0});
  sim::Device dev;
  auto in = dev.alloc<double>(shape.volume());
  auto out = dev.alloc<double>(shape.volume());
  Plan plan = make_plan(dev, shape, perm);
  const auto pure = plan.execute<double>(in, out);
  const auto accum = plan.execute<double>(in, out, 1.0, 1.0);
  // beta != 0 loads every output element before storing it.
  EXPECT_EQ(accum.counters.gld_transactions,
            pure.counters.gld_transactions + pure.counters.gst_transactions);
  EXPECT_EQ(accum.counters.gst_transactions, pure.counters.gst_transactions);
  EXPECT_GT(accum.time_s, pure.time_s);
}

TEST(Epilogue, DefaultIsPurePermutation) {
  const Epilogue<double> e;
  EXPECT_TRUE(e.is_identity());
  EXPECT_FALSE((Epilogue<double>{2.0, 0.0}).is_identity());
  EXPECT_FALSE((Epilogue<double>{1.0, 1.0}).is_identity());
}

TEST(Epilogue, FloatPath) {
  const Shape shape({48, 9, 48});
  const Permutation perm({2, 1, 0});
  Tensor<float> host_in(shape);
  host_in.fill_iota();
  sim::Device dev;
  auto in = dev.alloc_copy<float>(host_in.vec());
  auto out = dev.alloc<float>(shape.volume());
  PlanOptions opts;
  opts.elem_size = 4;
  Plan plan = make_plan(dev, shape, perm, opts);
  plan.execute<float>(in, out, 0.5f, 0.0f);
  const Tensor<float> permuted = host_transpose(host_in, perm);
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(out[i], 0.5f * permuted.at(i));
}

}  // namespace
}  // namespace ttlg
