// Property test for the Granlund–Montgomery fast division in
// src/common/fastdiv.hpp: div/mod/divmod must agree bit-for-bit with
// the hardware `/` and `%` over the full supported domain — divisors 1,
// powers of two, primes small and Mersenne-large, and divisors or
// numerators sitting right at INT64_MAX. CI additionally runs this
// binary under UBSan, so any shift/overflow sloppiness in the magic-
// number path is a hard failure, not just a wrong answer.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "common/fastdiv.hpp"
#include "common/rng.hpp"

namespace ttlg {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

void expect_matches(const FastDiv& fd, std::int64_t n) {
  const std::int64_t d = fd.divisor();
  ASSERT_GE(n, 0);
  EXPECT_EQ(fd.div(n), n / d) << "n=" << n << " d=" << d;
  EXPECT_EQ(fd.mod(n), n % d) << "n=" << n << " d=" << d;
  const DivMod dm = fd.divmod(n);
  EXPECT_EQ(dm.quot, n / d) << "n=" << n << " d=" << d;
  EXPECT_EQ(dm.rem, n % d) << "n=" << n << " d=" << d;
}

// Numerators that stress a given divisor: boundaries of the quotient
// steps, powers of two, and the extremes of the domain.
std::vector<std::int64_t> interesting_numerators(std::int64_t d) {
  std::vector<std::int64_t> ns = {0, 1, 2, 31, 32, 33, 1000003,
                                  (std::int64_t{1} << 31) - 1,
                                  std::int64_t{1} << 31,
                                  (std::int64_t{1} << 62) - 1,
                                  std::int64_t{1} << 62,
                                  kMax - 2, kMax - 1, kMax};
  for (std::int64_t k : {std::int64_t{1}, std::int64_t{2}, std::int64_t{7}}) {
    if (d <= kMax / k) {
      const std::int64_t kd = k * d;
      ns.push_back(kd - 1);
      ns.push_back(kd);
      if (kd < kMax) ns.push_back(kd + 1);
    }
  }
  return ns;
}

std::vector<std::int64_t> interesting_divisors() {
  std::vector<std::int64_t> ds = {1};
  for (int k = 1; k <= 62; ++k) ds.push_back(std::int64_t{1} << k);
  // Primes: small, the classic Mersenne ladder, and INT64_MAX itself
  // (2^63 - 1 = 7 * 73 * 127 * 337 * 92737 * 649657 is not prime, but
  // it is the largest representable divisor, and 2^61 - 1 is prime).
  for (std::int64_t p :
       {std::int64_t{3}, std::int64_t{5}, std::int64_t{7}, std::int64_t{11},
        std::int64_t{13}, std::int64_t{31}, std::int64_t{61},
        std::int64_t{127}, std::int64_t{8191}, std::int64_t{131071},
        std::int64_t{524287}, std::int64_t{2147483647},
        (std::int64_t{1} << 61) - 1})
    ds.push_back(p);
  // Values near the top of the domain.
  for (std::int64_t d : {kMax, kMax - 1, kMax - 24, (std::int64_t{1} << 62) - 1,
                         (std::int64_t{1} << 62) + 1})
    ds.push_back(d);
  // Typical tensor extents (the actual workload of this class).
  for (std::int64_t d = 2; d <= 64; ++d) ds.push_back(d);
  return ds;
}

TEST(FastDiv, MatchesHardwareDivModOnInterestingPairs) {
  for (std::int64_t d : interesting_divisors()) {
    const FastDiv fd(d);
    EXPECT_EQ(fd.divisor(), d);
    for (std::int64_t n : interesting_numerators(d)) expect_matches(fd, n);
  }
}

TEST(FastDiv, MatchesHardwareDivModOnRandomPairs) {
  Rng rng(20260805);
  std::vector<std::int64_t> ds = interesting_divisors();
  for (int i = 0; i < 200; ++i)
    ds.push_back(1 + static_cast<std::int64_t>(rng() >> 1) % kMax);
  for (std::int64_t d : ds) {
    const FastDiv fd(d);
    for (int i = 0; i < 64; ++i) {
      const std::int64_t n = static_cast<std::int64_t>(rng() >> 1);  // [0,2^63)
      expect_matches(fd, n);
    }
  }
}

TEST(FastDiv, DefaultConstructedDividesByOne) {
  const FastDiv fd;
  EXPECT_EQ(fd.divisor(), 1);
  for (std::int64_t n : {std::int64_t{0}, std::int64_t{17}, kMax}) {
    EXPECT_EQ(fd.div(n), n);
    EXPECT_EQ(fd.mod(n), 0);
  }
}

TEST(FastDiv, ConstexprUsable) {
  constexpr FastDiv fd(48);
  static_assert(fd.div(100) == 2);
  static_assert(fd.mod(100) == 4);
  static_assert(fd.divmod(95).quot == 1);
  static_assert(fd.divmod(95).rem == 47);
  SUCCEED();
}

}  // namespace
}  // namespace ttlg
