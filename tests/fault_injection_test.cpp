// Robustness harness: the error taxonomy, the deterministic fault
// injector, and the graceful-degradation ladder. The randomized sweep
// at the bottom is the acceptance bar: under every fault class, every
// execution either returns a classified ttlg::Error or produces a
// bit-correct result through some rung of the ladder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/plan.hpp"
#include "gpusim/fault_injector.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a ttlg::Error";
  return ErrorCode::kInternal;
}

// ---------------------------------------------------------------------------
// Error taxonomy and Status/Expected plumbing.

TEST(ErrorTaxonomy, MacrosClassify) {
  EXPECT_EQ(code_of([] { TTLG_CHECK(false, "nope"); }),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of([] { TTLG_ASSERT(false, "bug"); }),
            ErrorCode::kInternal);
  EXPECT_EQ(code_of([] { TTLG_RAISE(ErrorCode::kDataLoss, "gone"); }),
            ErrorCode::kDataLoss);
  EXPECT_EQ(code_of([] {
              TTLG_CHECK_CODE(false, ErrorCode::kResourceExhausted, "oom");
            }),
            ErrorCode::kResourceExhausted);
}

TEST(ErrorTaxonomy, RetryableCoversTransientClassesOnly) {
  EXPECT_TRUE(retryable(ErrorCode::kResourceExhausted));
  EXPECT_TRUE(retryable(ErrorCode::kFaultInjected));
  EXPECT_TRUE(retryable(ErrorCode::kUnsupported));
  EXPECT_FALSE(retryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(retryable(ErrorCode::kDataLoss));
  EXPECT_FALSE(retryable(ErrorCode::kInternal));
}

TEST(StatusExpected, CaptureRoundTrips) {
  auto ok = capture([] { return 42; });
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().is_ok());

  auto bad = capture([]() -> int {
    TTLG_RAISE(ErrorCode::kUnsupported, "not today");
  });
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), ErrorCode::kUnsupported);
  EXPECT_THROW(bad.value(), Error);
}

// ---------------------------------------------------------------------------
// Fault-spec grammar and injector determinism.

TEST(FaultSpec, ParsesTheDocumentedGrammar) {
  const auto spec =
      sim::FaultSpec::parse("seed=7, alloc.p=0.25, launch.nth=3, tex.every=2");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.site(sim::FaultSite::kAlloc).p, 0.25);
  EXPECT_EQ(spec.site(sim::FaultSite::kLaunch).nth, 3);
  EXPECT_EQ(spec.site(sim::FaultSite::kTexCache).every, 2);
  EXPECT_FALSE(spec.site(sim::FaultSite::kSmem).armed());
  EXPECT_TRUE(spec.any());
  // Round trip through to_string.
  const auto again = sim::FaultSpec::parse(spec.to_string());
  EXPECT_EQ(again.to_string(), spec.to_string());
  EXPECT_FALSE(sim::FaultSpec::parse("").any());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char* bad :
       {"bogus", "alloc=1", "alloc.p=2.0", "alloc.p=-0.5", "launch.nth=0",
        "smem.every=-3", "disk.p=0.5", "alloc.often=1", "seed=x"}) {
    EXPECT_EQ(code_of([bad] { sim::FaultSpec::parse(bad); }),
              ErrorCode::kInvalidArgument)
        << bad;
  }
}

TEST(FaultInjector, DeterministicPerSeed) {
  auto sequence = [](const std::string& spec) {
    sim::ScopedFaults scoped(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(sim::FaultInjector::global().fire(sim::FaultSite::kAlloc));
    return fired;
  };
  const auto a = sequence("seed=11,alloc.p=0.3");
  const auto b = sequence("seed=11,alloc.p=0.3");
  const auto c = sequence("seed=12,alloc.p=0.3");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide over 64 draws
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
}

TEST(FaultInjector, NthFiresExactlyOnce) {
  sim::ScopedFaults scoped("launch.nth=3");
  auto& inj = sim::FaultInjector::global();
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(inj.fire(sim::FaultSite::kLaunch));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(inj.injected(sim::FaultSite::kLaunch), 1);
  EXPECT_EQ(inj.queries(sim::FaultSite::kLaunch), 6);
}

TEST(FaultInjector, ScopedFaultsRestoresPreviousSpec) {
  auto& inj = sim::FaultInjector::global();
  // The ambient spec may be non-empty (CI runs this suite under an
  // external TTLG_FAULTS); restoration must return to it, not to "off".
  const bool baseline_alloc_armed =
      inj.spec().site(sim::FaultSite::kAlloc).armed();
  {
    sim::ScopedFaults outer("alloc.every=1");
    EXPECT_TRUE(inj.armed());
    {
      sim::ScopedFaults inner("");
      EXPECT_FALSE(inj.armed());
    }
    EXPECT_TRUE(inj.armed());
    EXPECT_EQ(inj.spec().site(sim::FaultSite::kAlloc).every, 1);
  }
  EXPECT_EQ(inj.spec().site(sim::FaultSite::kAlloc).armed(),
            baseline_alloc_armed);
}

// ---------------------------------------------------------------------------
// Execute-time argument guards (aliasing, unmaterialized buffers).

TEST(ExecuteGuards, RejectsAliasedBuffers) {
  sim::Device dev;
  const Shape shape({32, 32});
  Plan plan = make_plan(dev, shape, Permutation({1, 0}));
  auto buf = dev.alloc<double>(shape.volume());
  EXPECT_EQ(code_of([&] { plan.execute<double>(buf, buf); }),
            ErrorCode::kInvalidArgument);
}

TEST(ExecuteGuards, RejectsNullBuffersInFunctionalMode) {
  sim::Device dev;
  const Shape shape({32, 32});
  Plan plan = make_plan(dev, shape, Permutation({1, 0}));
  sim::DeviceBuffer<double> null_in, null_out;
  auto r = plan.try_execute<double>(null_in, null_out);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// The degradation ladder, one fault class at a time. The OD problem
// below exercises texture arrays + shared memory, so each class kills a
// different set of rungs.

const Shape kLadderShape({40, 9, 40});
const Permutation kLadderPerm({2, 1, 0});

void expect_bit_correct(sim::Device& dev, const Plan& plan) {
  Tensor<double> host(kLadderShape);
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out = dev.alloc<double>(kLadderShape.volume());
  plan.execute<double>(in, out);
  const Tensor<double> expected = host_transpose(host, kLadderPerm);
  for (Index i = 0; i < kLadderShape.volume(); ++i)
    ASSERT_EQ(out[i], expected.at(i)) << i;
}

TEST(DegradationLadder, PlanTimeAllocFaultFallsBackToGenericOa) {
  sim::Device dev;
  auto& reg = telemetry::MetricsRegistry::global();
  const auto before = reg.counter_value("robustness.fallback.plan.oa");
  PlanOptions opts;
  opts.faults = "alloc.nth=1";  // kill the OD upload; the OA upload lives
  Plan plan = make_plan(dev, kLadderShape, kLadderPerm, opts);
  EXPECT_TRUE(plan.degraded());
  EXPECT_EQ(plan.plan_path(), ExecPath::kGenericOa);
  EXPECT_EQ(plan.schema(), Schema::kOrthogonalArbitrary);
  EXPECT_NE(plan.describe().find("degraded"), std::string::npos);
  EXPECT_EQ(reg.counter_value("robustness.fallback.plan.oa"), before + 1);
  expect_bit_correct(dev, plan);
}

TEST(DegradationLadder, PlanTimePersistentAllocFaultFallsBackToNaive) {
  sim::Device dev;
  auto& reg = telemetry::MetricsRegistry::global();
  const auto before = reg.counter_value("robustness.fallback.plan.naive");
  PlanOptions opts;
  opts.faults = "alloc.every=1";  // no device allocation can succeed
  Plan plan = make_plan(dev, kLadderShape, kLadderPerm, opts);
  EXPECT_EQ(plan.plan_path(), ExecPath::kNaive);
  EXPECT_EQ(reg.counter_value("robustness.fallback.plan.naive"), before + 1);
  expect_bit_correct(dev, plan);
  EXPECT_EQ(plan.last_exec_path(), ExecPath::kNaive);
}

TEST(DegradationLadder, FallbackDisabledPropagatesTheClassifiedError) {
  sim::Device dev;
  PlanOptions opts;
  opts.enable_fallback = false;
  opts.faults = "alloc.nth=1";
  EXPECT_EQ(code_of([&] { make_plan(dev, kLadderShape, kLadderPerm, opts); }),
            ErrorCode::kResourceExhausted);
}

TEST(DegradationLadder, TransientLaunchFaultIsRetried) {
  sim::Device dev;
  Plan plan = make_plan(dev, kLadderShape, kLadderPerm);
  auto& reg = telemetry::MetricsRegistry::global();
  const auto before = reg.counter_value("robustness.fallback.exec.retry");
  sim::ScopedFaults scoped("launch.nth=1");  // first launch only
  expect_bit_correct(dev, plan);
  EXPECT_EQ(plan.last_exec_path(), ExecPath::kPlanned);
  EXPECT_EQ(reg.counter_value("robustness.fallback.exec.retry"), before + 1);
}

TEST(DegradationLadder, TextureFaultsDegradeToNaive) {
  sim::Device dev;
  Plan plan = make_plan(dev, kLadderShape, kLadderPerm);
  ASSERT_EQ(plan.schema(), Schema::kOrthogonalDistinct);
  // Both OD and the generic-OA fallback bind texture arrays; only the
  // naive kernel survives a persistent texture-cache fault.
  sim::ScopedFaults scoped("tex.every=1");
  expect_bit_correct(dev, plan);
  EXPECT_EQ(plan.last_exec_path(), ExecPath::kNaive);
}

TEST(DegradationLadder, SmemFaultsDegradeToNaive) {
  sim::Device dev;
  Plan plan = make_plan(dev, kLadderShape, kLadderPerm);
  sim::ScopedFaults scoped("smem.every=1");
  expect_bit_correct(dev, plan);
  EXPECT_EQ(plan.last_exec_path(), ExecPath::kNaive);
}

TEST(DegradationLadder, PersistentLaunchFaultExhaustsEveryRung) {
  sim::Device dev;
  Plan plan = make_plan(dev, kLadderShape, kLadderPerm);
  Tensor<double> host(kLadderShape);
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out = dev.alloc<double>(kLadderShape.volume());
  // The launch site gates every kernel, naive included: the ladder runs
  // out of rungs and the classified error surfaces.
  sim::ScopedFaults scoped("launch.every=1");
  auto r = plan.try_execute<double>(in, out);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), ErrorCode::kFaultInjected);
}

// ---------------------------------------------------------------------------
// Randomized sweep: random problems x fault classes. Every case must
// either throw a classified error or match the host transpose exactly.

Shape random_shape(Rng& rng) {
  const Index rank = static_cast<Index>(rng.uniform(1, 4));
  Extents ext;
  Index vol = 1;
  for (Index d = 0; d < rank; ++d) {
    Index e = static_cast<Index>(rng.uniform(1, 24));
    if (vol * e > 40000) e = 1;
    ext.push_back(e);
    vol *= e;
  }
  return Shape(ext);
}

Permutation random_perm(Rng& rng, Index rank) {
  std::vector<Index> p(static_cast<std::size_t>(rank));
  for (Index i = 0; i < rank; ++i) p[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = p.size(); i > 1; --i)
    std::swap(p[i - 1], p[rng.uniform(0, i - 1)]);
  return Permutation(p);
}

TEST(FaultSweep, EveryCaseIsCorrectOrClassified) {
  std::vector<std::string> specs = {
      "seed=1,alloc.p=0.4",
      "seed=2,launch.p=0.3",
      "seed=3,tex.every=1",
      "seed=4,smem.every=2",
      "seed=5,alloc.p=0.3,launch.p=0.2,tex.p=0.3,smem.p=0.3",
  };
  // Honor an externally supplied spec too, so CI can sweep extra
  // configurations through the same assertions.
  if (const char* env = std::getenv("TTLG_FAULTS");
      env != nullptr && *env != '\0')
    specs.push_back(env);

  Rng rng(0xF417);
  int recovered = 0, classified = 0;
  for (const auto& spec_text : specs) {
    sim::ScopedFaults scoped(spec_text);
    for (int iter = 0; iter < 24; ++iter) {
      const Shape shape = random_shape(rng);
      const Permutation perm = random_perm(rng, shape.rank());
      try {
        sim::Device dev;
        Tensor<double> host(shape);
        host.fill_iota();
        auto in = dev.alloc_copy<double>(host.vec());
        auto out = dev.alloc<double>(shape.volume());
        Plan plan = make_plan(dev, shape, perm);
        plan.execute<double>(in, out);
        const Tensor<double> expected = host_transpose(host, perm);
        for (Index i = 0; i < shape.volume(); ++i)
          ASSERT_EQ(out[i], expected.at(i))
              << "spec=" << spec_text << " shape=" << shape.to_string()
              << " perm=" << perm.to_string() << " i=" << i;
        if (plan.degraded() || plan.last_exec_path() != ExecPath::kPlanned)
          ++recovered;
      } catch (const Error& e) {
        // Classified failure: acceptable, but it must carry a
        // fault-era code — never an internal invariant violation.
        EXPECT_NE(e.code(), ErrorCode::kInternal)
            << "spec=" << spec_text << ": " << e.what();
        ++classified;
      }
      // Anything else (std::exception, crash) fails the test/ASan run.
    }
  }
  // The sweep must actually exercise the machinery: some cases recover
  // through the ladder, and injected faults are visible in telemetry.
  EXPECT_GT(recovered, 0);
  EXPECT_GT(telemetry::MetricsRegistry::global().counter_value(
                "robustness.recovered"),
            0);
  SUCCEED() << recovered << " recovered, " << classified
            << " classified failures";
}

}  // namespace
}  // namespace ttlg
