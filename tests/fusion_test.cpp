#include <gtest/gtest.h>

#include "common/error.hpp"

#include "tensor/fusion.hpp"

namespace ttlg {
namespace {

TEST(Fusion, PaperExampleFusesMiddlePair) {
  // [i0,i1,i2,i3] -> [i3,i1,i2,i0]: i1,i2 adjacent in both -> rank 3.
  const Shape s({3, 4, 5, 6});
  const Permutation p({3, 1, 2, 0});
  const FusedProblem f = fuse_indices(s, p);
  EXPECT_EQ(f.shape, Shape({3, 20, 6}));
  EXPECT_EQ(f.perm, Permutation({2, 1, 0}));
  ASSERT_EQ(f.groups.size(), 3u);
  EXPECT_EQ(f.groups[0], (std::vector<Index>{0}));
  EXPECT_EQ(f.groups[1], (std::vector<Index>{1, 2}));
  EXPECT_EQ(f.groups[2], (std::vector<Index>{3}));
}

TEST(Fusion, IdentityFusesToRankOne) {
  const Shape s({2, 3, 4});
  const FusedProblem f = fuse_indices(s, Permutation::identity(3));
  EXPECT_EQ(f.shape, Shape({24}));
  EXPECT_TRUE(f.perm.is_identity());
}

TEST(Fusion, NonFusiblePermutationKeepsRank) {
  const Shape s({2, 3, 4, 5});
  const Permutation p({1, 3, 0, 2});  // no adjacent consecutive pairs
  EXPECT_EQ(scaled_rank(s, p), 4);
}

TEST(Fusion, LeadingPairFuses) {
  // [i0,i1,i2] -> [i0,i1,i2] prefix preserved in (0,1,...) order only
  // partially: perm (0,2,1)? i0 alone; perm (2,0,1): i0,i1 adjacent in
  // output positions 1,2 -> fuse.
  const Shape s({4, 5, 6});
  const FusedProblem f = fuse_indices(s, Permutation({2, 0, 1}));
  EXPECT_EQ(f.shape, Shape({20, 6}));
  EXPECT_EQ(f.perm, Permutation({1, 0}));
}

TEST(Fusion, PaperScaledRankExample) {
  // Paper §VI: permutation (0 2 1 3 4 6 5) of a 7D tensor has scaled
  // rank 5 after fusing the contiguous pair (3,4).
  const Shape s({2, 2, 2, 2, 2, 2, 2});
  EXPECT_EQ(scaled_rank(s, Permutation({0, 2, 1, 3, 4, 6, 5})), 6);
  // (3,4) fuse; note 0 stays alone because output position 0 keeps it
  // but position 1 jumps to 2. Counting: {0},{2},{1},{3,4},{6},{5}.
}

TEST(Fusion, FusedVolumeInvariant) {
  const Shape s({3, 7, 2, 5, 4});
  const Permutation p({4, 0, 1, 2, 3});
  const FusedProblem f = fuse_indices(s, p);
  EXPECT_EQ(f.shape.volume(), s.volume());
  // (0,1,2,3) occupy output positions 1..4 consecutively -> one group.
  EXPECT_EQ(f.shape.rank(), 2);
}

TEST(Fusion, GroupsPartitionAllDimensions) {
  const Shape s({2, 3, 4, 5, 6, 7});
  const Permutation p({5, 0, 1, 3, 4, 2});
  const FusedProblem f = fuse_indices(s, p);
  std::vector<bool> seen(6, false);
  for (const auto& g : f.groups)
    for (Index d : g) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(d)]);
      seen[static_cast<std::size_t>(d)] = true;
    }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(Fusion, RankOneIsAlreadyFused) {
  const FusedProblem f = fuse_indices(Shape({10}), Permutation({0}));
  EXPECT_EQ(f.shape.rank(), 1);
}

}  // namespace
}  // namespace ttlg
