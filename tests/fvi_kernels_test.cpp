// FVI-Match kernels (Algs. 6 and 7): blocking-factor sweeps, padding
// guarantees (Fig. 4), segmentation and row batching.
#include <gtest/gtest.h>

#include "core/launch_helpers.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

Tensor<double> run_small(const TransposeProblem& p, const FviSmallConfig& cfg,
                         const Tensor<double>& host_in,
                         sim::LaunchCounters* ctr = nullptr) {
  sim::Device dev;
  auto in = dev.alloc_copy<double>(host_in.vec());
  auto out = dev.alloc<double>(p.volume());
  const auto res = launch_fvi_small<double>(dev, cfg, in, out);
  if (ctr) *ctr = res.counters;
  Tensor<double> host_out(p.perm.apply(p.shape));
  host_out.vec().assign(out.span().begin(), out.span().end());
  return host_out;
}

Tensor<double> run_large(const TransposeProblem& p, const FviLargeConfig& cfg,
                         const Tensor<double>& host_in,
                         sim::LaunchCounters* ctr = nullptr) {
  sim::Device dev;
  auto in = dev.alloc_copy<double>(host_in.vec());
  auto out = dev.alloc<double>(p.volume());
  const auto res = launch_fvi_large<double>(dev, cfg, in, out);
  if (ctr) *ctr = res.counters;
  Tensor<double> host_out(p.perm.apply(p.shape));
  host_out.vec().assign(out.span().begin(), out.span().end());
  return host_out;
}

class FviSmallBlocking : public ::testing::TestWithParam<Index> {};

TEST_P(FviSmallBlocking, CorrectForEveryBlockingFactor) {
  const auto p = TransposeProblem::make(Shape({16, 11, 9, 3}),
                                        Permutation({0, 2, 1, 3}), 8);
  const Index b = GetParam();
  if (b > std::min<Index>(11, 9)) GTEST_SKIP() << "b beyond extents";
  const auto cfg = build_fvi_small_config(p, b, false);
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  EXPECT_EQ(run_small(p, cfg, host_in).vec(),
            host_transpose(host_in, p.perm).vec())
      << "b = " << b;
}

INSTANTIATE_TEST_SUITE_P(BlockingFactors, FviSmallBlocking,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9));

TEST(FviSmall, PaddingEliminatesConflicts) {
  // n0 = 16, b = 4: pad = (16 - 64 mod 32) mod 32 = 16.
  const auto p = TransposeProblem::make(Shape({16, 8, 8}),
                                        Permutation({0, 2, 1}), 8);
  const auto cfg = build_fvi_small_config(p, 4, false);
  EXPECT_EQ(cfg.pad, 16);
  EXPECT_EQ(cfg.row_pitch, 80);
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  sim::LaunchCounters ctr;
  run_small(p, cfg, host_in, &ctr);
  EXPECT_EQ(ctr.smem_bank_conflicts, 0);
}

TEST(FviSmall, UnpaddedBufferConflicts) {
  const auto p = TransposeProblem::make(Shape({16, 8, 8}),
                                        Permutation({0, 2, 1}), 8);
  auto cfg = build_fvi_small_config(p, 4, false);
  cfg.pad = 0;
  cfg.row_pitch = cfg.b * cfg.n0;
  cfg.smem_elems = cfg.b * cfg.row_pitch;
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  sim::LaunchCounters ctr;
  const auto out = run_small(p, cfg, host_in, &ctr);
  EXPECT_EQ(out.vec(), host_transpose(host_in, p.perm).vec());
  EXPECT_GT(ctr.smem_bank_conflicts, 0);
}

TEST(FviSmall, RemainderChunksOnBothBlockedDims) {
  // extents 11 and 9 blocked by 4: remainders 3 and 1.
  const auto p = TransposeProblem::make(Shape({8, 11, 9}),
                                        Permutation({0, 2, 1}), 8);
  const auto cfg = build_fvi_small_config(p, 4, false);
  EXPECT_EQ(cfg.i1_rem, 3);
  EXPECT_EQ(cfg.ik_rem, 1);
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  EXPECT_EQ(run_small(p, cfg, host_in).vec(),
            host_transpose(host_in, p.perm).vec());
}

TEST(FviSmall, RequiresValidProblem) {
  const auto bad = TransposeProblem::make(Shape({16, 8, 8}),
                                          Permutation({2, 1, 0}), 8);
  EXPECT_THROW(build_fvi_small_config(bad, 4, false), Error);
  const auto p = TransposeProblem::make(Shape({16, 8, 8}),
                                        Permutation({0, 2, 1}), 8);
  EXPECT_THROW(build_fvi_small_config(p, 0, false), Error);
  EXPECT_THROW(build_fvi_small_config(p, 9, false), Error);  // > min ext
}

TEST(FviSmall, BlockingEnumerationFitsSharedMemory) {
  const auto p = TransposeProblem::make(Shape({24, 30, 30}),
                                        Permutation({0, 2, 1}), 8);
  const auto bs = enumerate_fvi_small_blockings(p, 6144);
  ASSERT_FALSE(bs.empty());
  for (Index b : bs) {
    const auto cfg = build_fvi_small_config(p, b, false);
    EXPECT_LE(cfg.smem_elems, 6144);
  }
}

TEST(FviLarge, SimpleAndSegmented) {
  for (Index n0 : {40, 5000}) {
    const auto p = TransposeProblem::make(Shape({n0, 6, 7}),
                                          Permutation({0, 2, 1}), 8);
    const auto cfg = build_fvi_large_config(p, true);
    Tensor<double> host_in(p.shape);
    host_in.fill_iota();
    EXPECT_EQ(run_large(p, cfg, host_in).vec(),
              host_transpose(host_in, p.perm).vec())
        << "n0 = " << n0;
  }
}

TEST(FviLarge, RowBatchingWithRemainder) {
  // ext1 = 13 batched: remainder chunk exercised.
  const auto p = TransposeProblem::make(Shape({64, 13, 64, 9}),
                                        Permutation({0, 3, 2, 1}), 8);
  const auto cfg = build_fvi_large_config(p, true);
  EXPECT_GT(cfg.batch, 1);
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  EXPECT_EQ(run_large(p, cfg, host_in).vec(),
            host_transpose(host_in, p.perm).vec());
}

TEST(FviLarge, PureCopyRankOne) {
  const auto p =
      TransposeProblem::make(Shape({10000}), Permutation({0}), 8);
  const auto cfg = build_fvi_large_config(p, true);
  Tensor<double> host_in(p.shape);
  host_in.fill_random(3);
  EXPECT_EQ(run_large(p, cfg, host_in).vec(), host_in.vec());
}

TEST(FviLarge, PerfectCoalescingOnAlignedRows) {
  const auto p = TransposeProblem::make(Shape({64, 16, 16}),
                                        Permutation({0, 2, 1}), 8);
  const auto cfg = build_fvi_large_config(p, true);
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  sim::LaunchCounters ctr;
  run_large(p, cfg, host_in, &ctr);
  EXPECT_DOUBLE_EQ(ctr.coalescing_efficiency(), 1.0);
  EXPECT_EQ(ctr.smem_load_ops + ctr.smem_store_ops, 0);  // no staging
}

TEST(FviLarge, RequiresMatchingFvi) {
  const auto bad =
      TransposeProblem::make(Shape({64, 8}), Permutation({1, 0}), 8);
  EXPECT_THROW(build_fvi_large_config(bad, true), Error);
}

}  // namespace
}  // namespace ttlg
