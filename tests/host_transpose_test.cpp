#include <gtest/gtest.h>

#include "common/error.hpp"

#include <numeric>

#include "common/rng.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

/// Brute-force oracle for the oracle: explicit multi-index loop.
template <class T>
Tensor<T> transpose_bruteforce(const Tensor<T>& in, const Permutation& perm) {
  Tensor<T> out(perm.apply(in.shape()));
  const Shape& is = in.shape();
  const Shape& os = out.shape();
  for (Index lin = 0; lin < is.volume(); ++lin) {
    const Extents idx = is.delinearize(lin);
    Extents oidx(static_cast<std::size_t>(perm.rank()));
    for (Index j = 0; j < perm.rank(); ++j)
      oidx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(perm[j])];
    out.at(os.linearize(oidx)) = in.at(lin);
  }
  return out;
}

TEST(HostTranspose, Matrix2x3Manual) {
  Tensor<double> in(Shape({2, 3}));
  in.fill_iota();  // column j stored [0,1], [2,3], [4,5]
  const Tensor<double> out = host_transpose(in, Permutation({1, 0}));
  EXPECT_EQ(out.shape(), Shape({3, 2}));
  // out(j,i) = in(i,j): out linear = j + 3*i.
  EXPECT_EQ(out.at(0), 0.0);
  EXPECT_EQ(out.at(1), 2.0);
  EXPECT_EQ(out.at(2), 4.0);
  EXPECT_EQ(out.at(3), 1.0);
  EXPECT_EQ(out.at(4), 3.0);
  EXPECT_EQ(out.at(5), 5.0);
}

TEST(HostTranspose, IdentityIsCopy) {
  Tensor<float> in(Shape({4, 3, 2}));
  in.fill_random(3);
  const Tensor<float> out = host_transpose(in, Permutation::identity(3));
  EXPECT_EQ(in.vec(), out.vec());
}

TEST(HostTranspose, MatchesBruteForceOnRandomShapes) {
  Rng rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    const Index rank = static_cast<Index>(rng.uniform(1, 5));
    Extents ext;
    for (Index d = 0; d < rank; ++d)
      ext.push_back(static_cast<Index>(rng.uniform(1, 9)));
    std::vector<Index> pv(static_cast<std::size_t>(rank));
    std::iota(pv.begin(), pv.end(), Index{0});
    for (std::size_t i = pv.size(); i > 1; --i)
      std::swap(pv[i - 1], pv[rng.uniform(0, i - 1)]);
    const Permutation perm(pv);
    Tensor<double> in{Shape(ext)};
    in.fill_iota();
    EXPECT_EQ(host_transpose(in, perm).vec(),
              transpose_bruteforce(in, perm).vec())
        << Shape(ext).to_string() << " " << perm.to_string();
  }
}

class HostTransposeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HostTransposeRoundTrip, ForwardThenInverseIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Index rank = static_cast<Index>(rng.uniform(2, 6));
  Extents ext;
  for (Index d = 0; d < rank; ++d)
    ext.push_back(static_cast<Index>(rng.uniform(1, 7)));
  std::vector<Index> pv(static_cast<std::size_t>(rank));
  std::iota(pv.begin(), pv.end(), Index{0});
  for (std::size_t i = pv.size(); i > 1; --i)
    std::swap(pv[i - 1], pv[rng.uniform(0, i - 1)]);
  const Permutation perm(pv);

  Tensor<double> in{Shape(ext)};
  in.fill_random(GetParam());
  const Tensor<double> fwd = host_transpose(in, perm);
  const Tensor<double> back = host_transpose(fwd, perm.inverse());
  EXPECT_EQ(back.vec(), in.vec());
}

INSTANTIATE_TEST_SUITE_P(Sweep, HostTransposeRoundTrip,
                         ::testing::Range(0, 25));

TEST(HostTranspose, RejectsWrongSpanSizes) {
  const Shape s({4, 4});
  std::vector<double> small(8), right(16);
  EXPECT_THROW(host_transpose(std::span<const double>(small),
                              std::span<double>(right), s,
                              Permutation({1, 0})),
               Error);
  EXPECT_THROW(host_transpose(std::span<const double>(right),
                              std::span<double>(small), s,
                              Permutation({1, 0})),
               Error);
}

}  // namespace
}  // namespace ttlg
