// Tuned host transposition (HPTT-role substrate): strategy selection,
// correctness against the oracle across strategies/threads/tiles, and
// the alpha/beta epilogue.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "hosttt/host_plan.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg::host {
namespace {

TEST(HostPlan, StrategySelection) {
  EXPECT_EQ(HostPlan(Shape({8, 8, 8}), Permutation({0, 1, 2})).strategy(),
            HostStrategy::kMemcpy);
  EXPECT_EQ(HostPlan(Shape({8, 8, 8}), Permutation({0, 2, 1})).strategy(),
            HostStrategy::kRowCopy);
  EXPECT_EQ(HostPlan(Shape({8, 8, 8}), Permutation({2, 1, 0})).strategy(),
            HostStrategy::kTiled2D);
  // (0,1) fuse into the FVI -> row copy even though dim order changed.
  EXPECT_EQ(HostPlan(Shape({4, 4, 4, 4}), Permutation({0, 1, 3, 2})).strategy(),
            HostStrategy::kRowCopy);
}

TEST(HostPlan, Validation) {
  EXPECT_THROW(HostPlan(Shape({4, 4}), Permutation({1, 0}),
                        HostOptions{.num_threads = 0}),
               Error);
  EXPECT_THROW(HostPlan(Shape({4, 4}), Permutation({1, 0}),
                        HostOptions{.num_threads = 1, .block0 = 0}),
               Error);
  HostPlan plan(Shape({4, 4}), Permutation({1, 0}));
  std::vector<double> buf(16);
  EXPECT_THROW(plan.execute(buf.data(), buf.data()), Error);  // in-place
  EXPECT_THROW(plan.execute(nullptr, buf.data()), Error);
}

struct SweepParam {
  int threads;
  Index block0, block1;
};

class HostPlanSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HostPlanSweep, MatchesOracleAcrossShapes) {
  const auto [threads, tile_ix] = GetParam();
  const Index tiles[] = {1, 5, 64};
  HostOptions opts;
  opts.num_threads = threads;
  opts.block0 = tiles[tile_ix];
  opts.block1 = tiles[2 - tile_ix];

  Rng rng(static_cast<std::uint64_t>(threads * 100 + tile_ix));
  for (int iter = 0; iter < 12; ++iter) {
    const Index rank = static_cast<Index>(rng.uniform(1, 5));
    Extents ext;
    for (Index d = 0; d < rank; ++d)
      ext.push_back(static_cast<Index>(rng.uniform(1, 20)));
    std::vector<Index> pv(static_cast<std::size_t>(rank));
    std::iota(pv.begin(), pv.end(), Index{0});
    for (std::size_t i = pv.size(); i > 1; --i)
      std::swap(pv[i - 1], pv[rng.uniform(0, i - 1)]);
    const Shape shape(ext);
    const Permutation perm(pv);

    Tensor<double> in(shape);
    in.fill_iota();
    const Tensor<double> got = host_transpose_tuned(in, perm, opts);
    EXPECT_EQ(got.vec(), host_transpose(in, perm).vec())
        << shape.to_string() << perm.to_string() << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, HostPlanSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(0, 1, 2)));

TEST(HostPlan, LargeMultithreadedTiled) {
  const Shape shape({96, 40, 50});
  const Permutation perm({2, 1, 0});
  Tensor<double> in(shape);
  in.fill_random(9);
  HostOptions opts;
  opts.num_threads = 4;
  const Tensor<double> got = host_transpose_tuned(in, perm, opts);
  EXPECT_EQ(got.vec(), host_transpose(in, perm).vec());
}

TEST(HostPlan, AlphaBetaAllStrategies) {
  for (auto perm_v : {std::vector<Index>{0, 1, 2}, std::vector<Index>{0, 2, 1},
                      std::vector<Index>{2, 1, 0}}) {
    const Shape shape({24, 10, 12});
    const Permutation perm(perm_v);
    Tensor<double> in(shape);
    in.fill_iota();
    Tensor<double> out(perm.apply(shape));
    out.fill_random(5);
    const Tensor<double> out0 = out;
    const HostPlan plan(shape, perm);
    plan.execute(in.data(), out.data(), 2.0, -1.0);
    const Tensor<double> permuted = host_transpose(in, perm);
    for (Index i = 0; i < shape.volume(); ++i) {
      ASSERT_DOUBLE_EQ(out.at(i), 2.0 * permuted.at(i) - out0.at(i))
          << to_string(plan.strategy()) << " at " << i;
    }
  }
}

TEST(HostPlan, FloatPath) {
  const Shape shape({33, 17, 9});
  const Permutation perm({1, 2, 0});
  Tensor<float> in(shape);
  in.fill_random(3);
  HostOptions opts;
  opts.num_threads = 2;
  const Tensor<float> got = host_transpose_tuned(in, perm, opts);
  EXPECT_EQ(got.vec(), host_transpose(in, perm).vec());
}

TEST(HostPlan, DescribeMentionsStrategy) {
  const HostPlan plan(Shape({32, 32}), Permutation({1, 0}));
  EXPECT_NE(plan.describe().find("tiled-2d"), std::string::npos);
}

}  // namespace
}  // namespace ttlg::host
