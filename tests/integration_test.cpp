// End-to-end correctness: every kernel the planner can select, across
// randomized and structured shapes/permutations, verified element-exact
// against the host reference transpose.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/ttlg.hpp"

namespace ttlg {
namespace {

/// Run the full plan+execute pipeline and compare against the oracle.
/// Returns the schema actually chosen so tests can assert on coverage.
Schema run_and_check(const Extents& ext, const std::vector<Index>& perm_v,
                     PlanOptions opts = {}) {
  const Shape shape(ext);
  const Permutation perm(perm_v);
  sim::Device dev;

  Tensor<double> host_in(shape);
  host_in.fill_iota();
  const Tensor<double> expected = host_transpose(host_in, perm);

  auto in = dev.alloc_copy<double>(host_in.vec());
  auto out = dev.alloc<double>(shape.volume());
  std::fill(out.span().begin(), out.span().end(), -1.0);

  opts.elem_size = 8;
  Plan plan = make_plan(dev, shape, perm, opts);
  const auto res = plan.execute<double>(in, out);
  EXPECT_GT(res.time_s, 0.0);

  const auto got = out.span();
  for (Index i = 0; i < shape.volume(); ++i) {
    if (got[static_cast<std::size_t>(i)] != expected.at(i)) {
      ADD_FAILURE() << "mismatch at " << i << " for shape "
                    << shape.to_string() << " perm " << perm.to_string()
                    << " schema " << to_string(plan.schema()) << ": got "
                    << got[static_cast<std::size_t>(i)] << " want "
                    << expected.at(i);
      return plan.schema();
    }
  }
  return plan.schema();
}

TEST(Integration, Matrix2D) {
  EXPECT_EQ(run_and_check({64, 64}, {1, 0}), Schema::kOrthogonalDistinct);
}

TEST(Integration, Matrix2DOdd) { run_and_check({65, 37}, {1, 0}); }

TEST(Integration, Identity3D) {
  EXPECT_EQ(run_and_check({8, 8, 8}, {0, 1, 2}), Schema::kCopy);
}

TEST(Integration, FviMatchLarge) {
  EXPECT_EQ(run_and_check({64, 8, 8}, {0, 2, 1}), Schema::kFviMatchLarge);
}

TEST(Integration, FviMatchSmall) {
  EXPECT_EQ(run_and_check({16, 8, 8}, {0, 2, 1}), Schema::kFviMatchSmall);
}

TEST(Integration, OrthogonalDistinct3D) {
  EXPECT_EQ(run_and_check({40, 9, 40}, {2, 1, 0}),
            Schema::kOrthogonalDistinct);
}

TEST(Integration, OrthogonalArbitrary) {
  // [a,b,c,d] -> [c,b,d,a] with extents 8,2,8,8: the paper's §III
  // motivating example for the arbitrary schema. The Fig. 3 flowchart
  // classifies it OA; the planner may still pick a truncated-prefix OD
  // slice if the model rates it faster, so only the classification is
  // pinned here (kernel-level OA coverage lives in oa_kernel_test).
  const auto problem =
      TransposeProblem::make(Shape({8, 2, 8, 8}), Permutation({2, 1, 3, 0}), 8);
  EXPECT_EQ(classify(problem), Schema::kOrthogonalArbitrary);
  run_and_check({8, 2, 8, 8}, {2, 1, 3, 0});
  // A larger instance where staged OA transfer genuinely pays off.
  run_and_check({8, 2, 24, 24, 24}, {2, 1, 3, 0, 4});
}

TEST(Integration, PaperExampleAllReversed) {
  run_and_check({16, 2, 32, 32}, {3, 2, 1, 0});
}

TEST(Integration, Rank6All16SamplePermutations) {
  const Extents ext{16, 16, 16, 16, 16, 16};
  std::vector<Index> perm{0, 1, 2, 3, 4, 5};
  int count = 0;
  do {
    // Every 48th permutation (15 total) keeps runtime reasonable while
    // hitting all schemas; the benchmark harness runs all 720.
    if (count % 48 == 0) run_and_check(ext, perm);
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(count, 720);
}

TEST(Integration, RandomShapesAndPermutations) {
  Rng rng(2026);
  for (int iter = 0; iter < 60; ++iter) {
    const Index rank = static_cast<Index>(rng.uniform(1, 6));
    Extents ext;
    Index vol = 1;
    for (Index d = 0; d < rank; ++d) {
      const Index e = static_cast<Index>(rng.uniform(1, 33));
      ext.push_back(e);
      vol *= e;
    }
    if (vol > (1 << 20)) {
      --iter;
      continue;
    }
    std::vector<Index> perm(static_cast<std::size_t>(rank));
    std::iota(perm.begin(), perm.end(), Index{0});
    for (std::size_t i = perm.size(); i > 1; --i)
      std::swap(perm[i - 1], perm[rng.uniform(0, i - 1)]);
    run_and_check(ext, perm);
  }
}

TEST(Integration, HighRankTensors) {
  // §IV-B: ranks up to 15 are supported. Rank 12 of twos, reversed, and
  // a rank-10 mixed permutation.
  {
    Extents ext(12, 2);
    std::vector<Index> rev(12);
    for (Index d = 0; d < 12; ++d) rev[static_cast<std::size_t>(d)] = 11 - d;
    run_and_check(ext, rev);
  }
  {
    Extents ext{2, 3, 2, 2, 3, 2, 2, 3, 2, 2};
    run_and_check(ext, {9, 0, 4, 2, 7, 1, 5, 3, 8, 6});
  }
  {
    Extents ext(15, 2);
    std::vector<Index> rot(15);
    for (Index d = 0; d < 15; ++d)
      rot[static_cast<std::size_t>(d)] = (d + 7) % 15;
    run_and_check(ext, rot);
  }
}

TEST(Integration, SizeOneDimensions) {
  run_and_check({1, 40, 1, 40}, {3, 1, 2, 0});
  run_and_check({40, 1, 40}, {2, 1, 0});
  run_and_check({1, 1, 1}, {2, 0, 1});
}

TEST(Integration, FloatElementType) {
  const Shape shape({48, 9, 48});
  const Permutation perm({2, 1, 0});
  sim::Device dev;
  Tensor<float> host_in(shape);
  host_in.fill_iota();
  const Tensor<float> expected = host_transpose(host_in, perm);
  auto in = dev.alloc_copy<float>(host_in.vec());
  auto out = dev.alloc<float>(shape.volume());
  PlanOptions opts;
  opts.elem_size = 4;
  Plan plan = make_plan(dev, shape, perm, opts);
  plan.execute<float>(in, out);
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(out[i], expected.at(i)) << "at " << i;
}

TEST(Integration, CoarseningOnAndOffAgree) {
  const Extents ext{17, 15, 8, 17, 9};  // middle dim 8 triggers coarsening
  const std::vector<Index> perm{3, 1, 4, 0, 2};
  PlanOptions with, without;
  with.enable_coarsening = true;
  without.enable_coarsening = false;
  run_and_check(ext, perm, with);
  run_and_check(ext, perm, without);
}

}  // namespace
}  // namespace ttlg
