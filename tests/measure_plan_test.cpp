// Measurement-based planning: correctness, and the defining property
// that its choice is at least as fast as the model's choice on every
// candidate it measures.
#include <gtest/gtest.h>

#include "core/measure_plan.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

TEST(MeasurePlan, ProducesCorrectResults) {
  for (auto [ext, perm_v] :
       std::vector<std::pair<Extents, std::vector<Index>>>{
           {{40, 9, 40}, {2, 1, 0}},
           {{16, 8, 8}, {0, 2, 1}},
           {{8, 2, 24, 24}, {2, 1, 3, 0}},
           {{64, 6, 8}, {0, 2, 1}},
       }) {
    const Shape shape(ext);
    const Permutation perm(perm_v);
    sim::Device dev;
    Tensor<double> host(shape);
    host.fill_iota();
    auto in = dev.alloc_copy<double>(host.vec());
    auto out = dev.alloc<double>(shape.volume());
    MeasuredPlanStats stats;
    Plan plan = make_plan_measured(dev, shape, perm, {}, &stats);
    EXPECT_GE(stats.candidates_executed, 1);
    EXPECT_GT(stats.measure_device_s, 0.0);
    plan.execute<double>(in, out);
    const Tensor<double> expected = host_transpose(host, perm);
    for (Index i = 0; i < shape.volume(); ++i)
      ASSERT_EQ(out[i], expected.at(i))
          << shape.to_string() << perm.to_string() << " at " << i;
  }
}

TEST(MeasurePlan, NeverSlowerThanModelChoice) {
  for (auto [ext, perm_v] :
       std::vector<std::pair<Extents, std::vector<Index>>>{
           {{27, 27, 27, 27}, {3, 1, 0, 2}},
           {{16, 16, 16, 16, 16}, {4, 2, 0, 1, 3}},
           {{48, 20, 36}, {2, 0, 1}},
       }) {
    const Shape shape(ext);
    const Permutation perm(perm_v);
    sim::Device dev;
    dev.set_mode(sim::ExecMode::kCountOnly);
    dev.set_sampling(6);
    auto in = dev.alloc_virtual<double>(shape.volume());
    auto out = dev.alloc_virtual<double>(shape.volume());

    Plan model_plan = make_plan(dev, shape, perm);
    Plan measured_plan = make_plan_measured(dev, shape, perm);
    const double t_model = model_plan.execute<double>(in, out).time_s;
    const double t_measured = measured_plan.execute<double>(in, out).time_s;
    // Measuring samples a candidate SUBSET, so allow a tiny tolerance in
    // case the model found a candidate outside the measured sample.
    EXPECT_LE(t_measured, t_model * 1.05)
        << shape.to_string() << perm.to_string();
  }
}

TEST(MeasurePlan, RestoresDeviceMode) {
  sim::Device dev;
  ASSERT_EQ(dev.mode(), sim::ExecMode::kFunctional);
  make_plan_measured(dev, Shape({32, 32}), Permutation({1, 0}));
  EXPECT_EQ(dev.mode(), sim::ExecMode::kFunctional);
  EXPECT_EQ(dev.sampling(), 0);
}

}  // namespace
}  // namespace ttlg
