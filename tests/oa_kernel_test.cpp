// Orthogonal-Arbitrary kernel (Alg. 5) unit tests: offset arrays
// (Alg. 4) against brute force, correctness across slice shapes incl.
// remainder chunks and coarsening, padding behaviour.
#include <gtest/gtest.h>

#include "core/launch_helpers.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

sim::LaunchResult run_oa(sim::Device& dev, const TransposeProblem& p,
                         const OaConfig& cfg, const Tensor<double>& host_in,
                         Tensor<double>* host_out) {
  auto in = dev.alloc_copy<double>(host_in.vec());
  auto out = dev.alloc<double>(p.volume());
  auto t0 = dev.alloc_copy<Index>(cfg.input_offset);
  auto t1 = dev.alloc_copy<Index>(cfg.output_offset);
  auto t2 = dev.alloc_copy<Index>(cfg.sm_out_offset);
  const auto res = launch_oa<double>(dev, cfg, in, out, t0, t1, t2);
  if (host_out) host_out->vec().assign(out.span().begin(), out.span().end());
  dev.free_all();
  return res;
}

void check_correct(const Extents& ext, const std::vector<Index>& perm_v,
                   const OaSlice& slice, bool coarsen = false) {
  const Shape shape(ext);
  const Permutation perm(perm_v);
  const auto p = TransposeProblem::make(shape, perm, 8);
  const OaConfig cfg = build_oa_config(p, slice, coarsen);
  Tensor<double> host_in(shape);
  host_in.fill_iota();
  Tensor<double> host_out(perm.apply(shape));
  sim::Device dev;
  run_oa(dev, p, cfg, host_in, &host_out);
  ASSERT_EQ(host_out.vec(), host_transpose(host_in, perm).vec())
      << shape.to_string() << perm.to_string();
}

TEST(OaKernel, PaperMotivatingExample) {
  // [a,b,c,d] = 8,2,8,8 -> [c,b,d,a]: IS={a,b,c}, OOS={d}.
  OaSlice s{3, 8, 3, 8};
  check_correct({8, 2, 8, 8}, {2, 1, 3, 0}, s);
}

TEST(OaKernel, BlockedInputWithRemainder) {
  OaSlice s{2, 3, 2, 1};  // block_a=3 over extent 7 -> remainder 1
  check_correct({8, 7, 9}, {2, 0, 1}, s);
}

TEST(OaKernel, BlockedOosWithRemainder) {
  OaSlice s{1, 8, 1, 5};  // block_b=5 over extent 9 -> remainder 4
  check_correct({8, 4, 9}, {2, 1, 0}, s);
}

TEST(OaKernel, BothBlockedWithRemainders) {
  OaSlice s{2, 3, 2, 5};  // block_a=3 over 7 (rem 1), block_b=5 over 6 (rem 1)
  check_correct({4, 7, 6, 9}, {2, 0, 3, 1}, s);
}

TEST(OaKernel, EmptyOutputOnlySet) {
  // Output prefix inside the input prefix: OOS empty, oos_vol = 1.
  OaSlice s{3, 4, 1, 1};
  check_correct({8, 2, 4, 8}, {2, 0, 1, 3}, s);
}

TEST(OaKernel, CoarseningCorrect) {
  // Dim of extent 8 outside the slice triggers §IV-A coarsening once
  // the tensor exceeds 2 MB.
  OaSlice s{1, 32, 1, 8};
  check_correct({32, 8, 16, 8, 9}, {2, 4, 0, 1, 3}, s, true);
}

TEST(OaKernel, OffsetArraysMatchBruteForce) {
  const auto p = TransposeProblem::make(Shape({4, 3, 5, 2}),
                                        Permutation({2, 0, 3, 1}), 8);
  OaSlice s{2, 3, 2, 5};  // IS={0,1(blocked 3)}, OS positions {0,1}
  const OaConfig cfg = build_oa_config(p, s, false);
  // input_offset[r]: walking OOS indices must land on the input offset
  // of that sub-tensor origin.
  const Shape& fs = p.fused.shape;
  ASSERT_EQ(cfg.oos_dims, (std::vector<Index>{2}));
  for (Index r = 0; r < cfg.oos_vol; ++r) {
    EXPECT_EQ(cfg.input_offset[static_cast<std::size_t>(r)],
              r * fs.stride(2));
  }
  // Every slice position p maps consistently: out offset must equal the
  // output linearization of the multi-index reconstructed from
  // sm_out_offset's (r, c) pair.
  const Shape fo = p.fused.perm.apply(fs);
  for (Index pos = 0; pos < cfg.slice_vol; ++pos) {
    const Index sm = cfg.sm_out_offset[static_cast<std::size_t>(pos)];
    const Index c = sm % cfg.in_vol;
    const Index r = sm / cfg.in_vol;
    // Reconstruct input coordinates of this element.
    Extents idx(static_cast<std::size_t>(fs.rank()), 0);
    Index rest = c;
    for (Index d = 0; d < s.dims_in; ++d) {
      const Index e = d == cfg.in_blocked_dim ? s.block_a : fs.extent(d);
      idx[static_cast<std::size_t>(d)] = rest % e;
      rest /= e;
    }
    idx[2] = r;  // the single OOS dim
    Index expected_out = 0;
    for (Index d = 0; d < fs.rank(); ++d)
      expected_out += idx[static_cast<std::size_t>(d)] *
                      fo.stride(p.fused.perm.position_of(d));
    EXPECT_EQ(cfg.output_offset[static_cast<std::size_t>(pos)], expected_out)
        << "pos " << pos;
  }
}

TEST(OaKernel, PaddingReducesConflictsSameResult) {
  const auto p = TransposeProblem::make(Shape({32, 16, 32}),
                                        Permutation({2, 1, 0}), 8);
  OaSlice s{1, 32, 1, 32};
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  const Tensor<double> expected = host_transpose(host_in, p.perm);

  OaConfig padded = build_oa_config(p, s, false);
  OaConfig bare = build_oa_config(p, s, false);
  bare.smem_padded = false;
  Tensor<double> out_a(p.perm.apply(p.shape)), out_b(p.perm.apply(p.shape));
  sim::Device dev;
  const auto r_pad = run_oa(dev, p, padded, host_in, &out_a);
  const auto r_bare = run_oa(dev, p, bare, host_in, &out_b);
  EXPECT_EQ(out_a.vec(), expected.vec());
  EXPECT_EQ(out_b.vec(), expected.vec());
  EXPECT_LT(r_pad.counters.smem_bank_conflicts,
            r_bare.counters.smem_bank_conflicts);
}

TEST(OaKernel, ConfigValidation) {
  const auto p = TransposeProblem::make(Shape({8, 8}), Permutation({1, 0}), 8);
  OaSlice bad{1, 9, 1, 1};  // block_a beyond extent
  EXPECT_THROW(build_oa_config(p, bad, false), Error);
  OaSlice bad2{1, 8, 1, 2};  // OOS blocked dim has extent 8; fine — but
  EXPECT_NO_THROW(build_oa_config(p, bad2, false));
  // block_b without any output-only dim is rejected.
  const auto pid =
      TransposeProblem::make(Shape({8, 4, 8}), Permutation({1, 0, 2}), 8);
  OaSlice bad3{3, 8, 2, 2};  // OS subset of IS
  EXPECT_THROW(build_oa_config(pid, bad3, false), Error);
}

TEST(OaKernel, EnumerationRespectsSharedMemory) {
  const auto p = TransposeProblem::make(Shape({40, 50, 60}),
                                        Permutation({2, 0, 1}), 8);
  const Index max_elems = 6144;
  const auto slices = enumerate_oa_slices(p, max_elems);
  ASSERT_FALSE(slices.empty());
  for (const auto& s : slices) {
    const OaConfig cfg = build_oa_config(p, s, false, false);
    EXPECT_LE(cfg.smem_elems(), max_elems) << "slice too big for smem";
  }
}

class OaEnumerated : public ::testing::TestWithParam<int> {};

TEST_P(OaEnumerated, EnumeratedSlicesAreCorrect) {
  const auto p = TransposeProblem::make(Shape({6, 4, 9, 5}),
                                        Permutation({2, 1, 3, 0}), 8);
  const auto slices = enumerate_oa_slices(p, 6000);
  ASSERT_FALSE(slices.empty());
  const std::size_t idx =
      static_cast<std::size_t>(GetParam()) * slices.size() / 8;
  const OaConfig cfg = build_oa_config(p, slices[idx], false);
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  Tensor<double> host_out(p.perm.apply(p.shape));
  sim::Device dev;
  run_oa(dev, p, cfg, host_in, &host_out);
  EXPECT_EQ(host_out.vec(), host_transpose(host_in, p.perm).vec())
      << "slice #" << idx;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OaEnumerated, ::testing::Range(0, 8));

}  // namespace
}  // namespace ttlg
