// Serving-grade observability: the structured event log, the flight
// recorder, the Prometheus exporter / snapshot writer, and the
// lock-free histogram quantiles. Tests that flip global state (log
// level, recorder switch, dump dir) restore it before returning so the
// rest of the suite is unaffected.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault_injector.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace fs = std::filesystem;
using namespace ttlg;

namespace {

// Global allocation counter for the zero-overhead test. Counting is
// switched on only inside that test to keep the rest of the suite
// undisturbed.
std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

/// Fresh per-test scratch directory under the system temp dir.
fs::path scratch_dir(const char* tag) {
  const fs::path dir = fs::temp_directory_path() /
                       (std::string("ttlg_obs_") + tag + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(StructuredLog, RecordIsOneJsonDocumentWithStandardKeys) {
  std::vector<std::string> lines;
  telemetry::set_log_sink([&](const std::string& l) { lines.push_back(l); });
  {
    const telemetry::ScopedLogLevel lvl(telemetry::LogLevel::kDebug);
    if (telemetry::log_site_enabled(telemetry::LogLevel::kInfo)) {
      telemetry::LogEvent ev(telemetry::LogLevel::kInfo, "obs_test", "hello");
      ev.field("answer", std::int64_t{42}).field("name", "transpose");
      ev.detail("short human summary");
    }
  }
  telemetry::set_log_sink(nullptr);

  ASSERT_EQ(lines.size(), 1u);
  const auto rec = telemetry::Json::parse(lines[0]);
  EXPECT_EQ(rec.at("level").as_str(), "info");
  EXPECT_EQ(rec.at("component").as_str(), "obs_test");
  EXPECT_EQ(rec.at("event").as_str(), "hello");
  EXPECT_GE(rec.at("ts_us").as_double(), 0.0);
  EXPECT_GE(rec.at("tid").as_int(), 1);
  EXPECT_EQ(rec.at("fields").at("answer").as_int(), 42);
  EXPECT_EQ(rec.at("fields").at("name").as_str(), "transpose");
}

TEST(StructuredLog, LevelGateFiltersTheSink) {
  std::vector<std::string> lines;
  telemetry::set_log_sink([&](const std::string& l) { lines.push_back(l); });
  {
    const telemetry::ScopedLogLevel lvl(telemetry::LogLevel::kWarn);
    { telemetry::LogEvent ev(telemetry::LogLevel::kDebug, "obs_test", "quiet"); }
    { telemetry::LogEvent ev(telemetry::LogLevel::kError, "obs_test", "loud"); }
  }
  telemetry::set_log_sink(nullptr);

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"loud\""), std::string::npos);
}

TEST(StructuredLog, ParseLogLevelRoundTrips) {
  EXPECT_EQ(telemetry::parse_log_level("debug"), telemetry::LogLevel::kDebug);
  EXPECT_EQ(telemetry::parse_log_level("error"), telemetry::LogLevel::kError);
  EXPECT_EQ(telemetry::parse_log_level("off"), telemetry::LogLevel::kOff);
  EXPECT_FALSE(telemetry::parse_log_level("verbose").has_value());
  EXPECT_STREQ(telemetry::to_string(telemetry::LogLevel::kWarn), "warn");
}

TEST(ThreadIds, StableWithinAndDistinctAcrossThreads) {
  const std::uint32_t main_id = telemetry::this_thread_id();
  EXPECT_GE(main_id, 1u);
  EXPECT_EQ(telemetry::this_thread_id(), main_id);
  std::uint32_t other = 0;
  std::thread([&] { other = telemetry::this_thread_id(); }).join();
  EXPECT_GE(other, 1u);
  EXPECT_NE(other, main_id);
}

TEST(ZeroOverhead, DisabledTelemetrySitesAllocateNothing) {
  const telemetry::ScopedLevel off(telemetry::Level::kOff);
  const telemetry::ScopedLogLevel log_off(telemetry::LogLevel::kOff);
  auto& fr = telemetry::FlightRecorder::global();
  const bool recorder_was_on = telemetry::recorder_enabled();
  fr.set_enabled(false);

  g_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    // The exact instrumentation-site pattern used across the library:
    // every piece of work is behind the site gate.
    if (telemetry::log_site_enabled(telemetry::LogLevel::kWarn)) {
      telemetry::LogEvent ev(telemetry::LogLevel::kWarn, "hot", "site");
      ev.field("i", std::int64_t{i});
    }
    telemetry::TraceSpan span("hot_span", "obs_test");
    if (telemetry::counters_enabled())
      telemetry::MetricsRegistry::global().counter("obs_test.never").inc();
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  fr.set_enabled(recorder_was_on);

  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0);
}

TEST(FlightRecorderTest, NotesRetainTruncateAndOrder) {
  auto& fr = telemetry::FlightRecorder::global();
  const bool was_on = telemetry::recorder_enabled();
  fr.set_enabled(true);
  fr.clear();

  fr.note(telemetry::LogLevel::kInfo, "a-component-name-longer-than-the-slot",
          "event_one", std::string(300, 'x'));
  fr.note(telemetry::LogLevel::kWarn, "short", "event_two", "detail two");
  const auto entries = fr.entries();
  fr.set_enabled(was_on);

  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].seq, entries[1].seq);  // global emission order
  EXPECT_EQ(std::string(entries[0].event), "event_one");
  EXPECT_LT(std::string(entries[0].component).size(), std::size_t{16});
  EXPECT_LT(std::string(entries[0].detail).size(), std::size_t{112});
  EXPECT_EQ(std::string(entries[1].detail), "detail two");
  EXPECT_EQ(entries[1].level, telemetry::LogLevel::kWarn);
  EXPECT_GE(entries[1].tid, 1u);
}

TEST(FlightRecorderTest, LogEventsMirrorIntoTheRing) {
  auto& fr = telemetry::FlightRecorder::global();
  const bool was_on = telemetry::recorder_enabled();
  fr.set_enabled(true);
  fr.clear();
  {
    // Log level off: nothing reaches the sink, but the site gate stays
    // open for the recorder and the ring still gets the event.
    const telemetry::ScopedLogLevel lvl(telemetry::LogLevel::kOff);
    ASSERT_TRUE(telemetry::log_site_enabled(telemetry::LogLevel::kDebug));
    telemetry::LogEvent ev(telemetry::LogLevel::kDebug, "obs_test", "mirrored");
    ev.detail("ring only");
  }
  const auto entries = fr.entries();
  fr.set_enabled(was_on);

  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(std::string(entries[0].event), "mirrored");
  EXPECT_EQ(std::string(entries[0].detail), "ring only");
}

TEST(FlightRecorderTest, RingCapacityBoundsPerThreadHistory) {
  auto& fr = telemetry::FlightRecorder::global();
  const bool was_on = telemetry::recorder_enabled();
  fr.set_enabled(true);
  fr.clear();
  fr.set_ring_capacity(8);
  // Capacity applies to rings registered from now on — use a fresh
  // thread so its ring is created at the new size.
  std::thread([&] {
    for (int i = 0; i < 50; ++i) {
      // snprintf instead of "d" + to_string(i): gcc-12 misfires
      // -Wrestrict on the concatenation here.
      char detail[16];
      std::snprintf(detail, sizeof detail, "d%d", i);
      fr.note(telemetry::LogLevel::kDebug, "cap_test", "evt", detail);
    }
  }).join();
  const auto entries = fr.entries();
  fr.set_ring_capacity(256);
  fr.set_enabled(was_on);

  std::vector<std::string> details;
  for (const auto& e : entries)
    if (std::string(e.component) == "cap_test") details.push_back(e.detail);
  ASSERT_EQ(details.size(), 8u);  // ring keeps the most recent N
  EXPECT_EQ(details.front(), "d42");
  EXPECT_EQ(details.back(), "d49");
}

TEST(FlightRecorderTest, DumpOnErrorWritesAttributablePostMortem) {
  auto& fr = telemetry::FlightRecorder::global();
  const bool was_on = telemetry::recorder_enabled();
  fr.set_enabled(true);
  fr.clear();
  const fs::path dir = scratch_dir("dump");
  fr.set_dump_dir(dir.string());
  const std::int64_t dumps_before = fr.dumps();

  fr.note(telemetry::LogLevel::kInfo, "obs_test", "pre_failure", "context");
  const std::string path =
      fr.dump_on_error("obs_site", ErrorCode::kDataLoss, "boom");
  fr.set_dump_dir("");
  fr.set_enabled(was_on);

  ASSERT_FALSE(path.empty());
  EXPECT_EQ(fr.dumps(), dumps_before + 1);
  const auto doc = telemetry::Json::parse(slurp(path));
  const auto& dump = doc.at("flight_recorder");
  EXPECT_EQ(dump.at("trigger").at("site").as_str(), "obs_site");
  EXPECT_EQ(dump.at("trigger").at("message").as_str(), "boom");
  // The history that led to the failure is in the dump, ending with the
  // trigger itself.
  ASSERT_GE(dump.at("events").size(), 2u);
  bool saw_context = false;
  for (std::size_t i = 0; i < dump.at("events").size(); ++i)
    if (dump.at("events").at(i).at("event").as_str() == "pre_failure")
      saw_context = true;
  EXPECT_TRUE(saw_context);
  fs::remove_all(dir);
}

TEST(FlightRecorderTest, FaultInjectionAutoDumps) {
  auto& fr = telemetry::FlightRecorder::global();
  const bool was_on = telemetry::recorder_enabled();
  fr.set_enabled(true);
  fr.clear();
  const fs::path dir = scratch_dir("fault");
  fr.set_dump_dir(dir.string());
  const std::int64_t dumps_before = fr.dumps();

  {
    sim::ScopedFaults faults("seed=1,alloc.every=1");
    sim::Device dev;
    EXPECT_THROW(dev.alloc<double>(64), Error);
  }
  fr.set_dump_dir("");
  fr.set_enabled(was_on);

  EXPECT_EQ(fr.dumps(), dumps_before + 1);
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) files.push_back(e.path());
  ASSERT_EQ(files.size(), 1u);
  const auto doc = telemetry::Json::parse(slurp(files[0]));
  EXPECT_EQ(doc.at("flight_recorder").at("trigger").at("site").as_str(),
            "alloc");
  EXPECT_EQ(doc.at("flight_recorder").at("trigger").at("code").as_str(),
            "FaultInjected");
  fs::remove_all(dir);
}

TEST(HistogramQuantile, InterpolatesWithinTheOwningBucket) {
  const std::vector<double> bounds = {10.0, 20.0, 40.0};
  // 2 observations in (0,10], 2 in (10,20].
  const std::vector<std::int64_t> counts = {2, 2, 0, 0};
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, counts, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, counts, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, counts, 1.0), 20.0);
}

TEST(HistogramQuantile, EdgeCases) {
  const std::vector<double> bounds = {10.0, 20.0, 40.0};
  // Empty histogram.
  EXPECT_DOUBLE_EQ(
      telemetry::histogram_quantile(bounds, {0, 0, 0, 0}, 0.5), 0.0);
  // Everything in the overflow bucket clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(
      telemetry::histogram_quantile(bounds, {0, 0, 0, 4}, 0.99), 40.0);
  // Mismatched shapes are rejected, not misread.
  EXPECT_DOUBLE_EQ(telemetry::histogram_quantile(bounds, {1, 2}, 0.5), 0.0);
  // q outside [0,1] clamps.
  EXPECT_DOUBLE_EQ(
      telemetry::histogram_quantile(bounds, {4, 0, 0, 0}, 2.0), 10.0);
}

TEST(HistogramConcurrency, ObserveIsLockFreeAndLossless) {
  telemetry::Histogram h({1.0, 2.0, 3.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>(i % 4) + 0.5);
    });
  for (auto& w : workers) w.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  for (const std::int64_t c : counts) EXPECT_EQ(c, kThreads * kPerThread / 4);
  // 0.5 + 1.5 + 2.5 + 3.5 per group of four observations — exact in
  // double, so the concurrent sum must match exactly too.
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread / 4 * 8.0);
  // Rank 50000 of 100000 is exactly the cumulative edge of the (1,2]
  // bucket, so the interpolated median is its upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(Prometheus, NameMangling) {
  EXPECT_EQ(telemetry::prometheus_name("plan_cache.hit"),
            "ttlg_plan_cache_hit");
  EXPECT_EQ(telemetry::prometheus_name("sim.launch-us"), "ttlg_sim_launch_us");
}

TEST(Prometheus, TextFormatExposition) {
  telemetry::MetricsRegistry reg;
  reg.counter("plan_cache.hit").inc(3);
  reg.gauge("speedup").set(1.5);
  auto& h = reg.histogram("lat.us", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(100.0);

  const std::string text = telemetry::to_prometheus(reg);
  const auto has = [&](const char* needle) {
    return text.find(needle) != std::string::npos;
  };
  EXPECT_TRUE(has("# TYPE ttlg_plan_cache_hit counter"));
  EXPECT_TRUE(has("ttlg_plan_cache_hit 3\n"));
  EXPECT_TRUE(has("# TYPE ttlg_speedup gauge"));
  EXPECT_TRUE(has("ttlg_speedup 1.5\n"));
  EXPECT_TRUE(has("# TYPE ttlg_lat_us histogram"));
  // Buckets are cumulative and end at +Inf.
  EXPECT_TRUE(has("ttlg_lat_us_bucket{le=\"1\"} 1\n"));
  EXPECT_TRUE(has("ttlg_lat_us_bucket{le=\"2\"} 2\n"));
  EXPECT_TRUE(has("ttlg_lat_us_bucket{le=\"4\"} 3\n"));
  EXPECT_TRUE(has("ttlg_lat_us_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(has("ttlg_lat_us_sum 105\n"));
  EXPECT_TRUE(has("ttlg_lat_us_count 4\n"));
  // Derived quantile gauges.
  EXPECT_TRUE(has("ttlg_lat_us_p50 "));
  EXPECT_TRUE(has("ttlg_lat_us_p95 "));
  EXPECT_TRUE(has("ttlg_lat_us_p99 "));
}

TEST(Prometheus, MalformedSnapshotSectionsAreSkipped) {
  auto snapshot = telemetry::Json::parse(
      R"({"counters": {"good": 1, "bad": "nope"},
          "histograms": {"broken": {"bounds": [1], "counts": [1]},
                         "fine": {"bounds": [1.0], "counts": [1, 0],
                                  "sum": 0.5, "count": 1}}})");
  const std::string text = telemetry::to_prometheus(snapshot);
  EXPECT_NE(text.find("ttlg_good 1"), std::string::npos);
  EXPECT_EQ(text.find("ttlg_bad"), std::string::npos);
  EXPECT_EQ(text.find("ttlg_broken"), std::string::npos);
  EXPECT_NE(text.find("ttlg_fine_count 1"), std::string::npos);
}

TEST(SnapshotWriterTest, WritesJsonAndPromAtomically) {
  telemetry::MetricsRegistry::global().counter("obs_test.snapshot_marker")
      .inc();
  const fs::path dir = scratch_dir("snap");
  telemetry::SnapshotWriter w;
  EXPECT_FALSE(w.write_now());  // no path configured

  w.start((dir / "metrics.json").string(), 100000);
  EXPECT_TRUE(w.running());
  w.stop();  // flushes the terminal snapshot
  EXPECT_FALSE(w.running());
  const auto doc = telemetry::Json::parse(slurp(dir / "metrics.json"));
  EXPECT_GE(doc.at("counters").at("obs_test.snapshot_marker").as_int(), 1);
  EXPECT_FALSE(fs::exists(dir / "metrics.json.tmp"));  // rename, not write

  w.start((dir / "metrics.prom").string(), 100000);
  w.stop();
  const std::string prom = slurp(dir / "metrics.prom");
  EXPECT_EQ(prom.rfind("# HELP", 0), 0u);
  EXPECT_NE(prom.find("ttlg_obs_test_snapshot_marker"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Trace, EventsCarryTidAndPerThreadDepth) {
  const telemetry::ScopedLevel scoped(telemetry::Level::kTrace);
  auto& collector = telemetry::TraceCollector::global();
  collector.clear();

  auto worker = [] {
    for (int i = 0; i < 200; ++i) {
      telemetry::TraceSpan outer("outer", "obs_test");
      telemetry::TraceSpan inner("inner", "obs_test");
    }
  };
  std::thread a(worker), b(worker);
  a.join();
  b.join();

  const auto events = collector.events();
  collector.clear();
  ASSERT_EQ(events.size(), 800u);
  std::vector<std::uint32_t> tids;
  for (const auto& ev : events) {
    EXPECT_GE(ev.tid, 1u);
    // Depth is tracked per thread: two concurrently-nesting threads
    // never push each other past their own lexical depth.
    EXPECT_EQ(ev.depth, ev.name == "outer" ? 0 : 1);
    if (std::find(tids.begin(), tids.end(), ev.tid) == tids.end())
      tids.push_back(ev.tid);
  }
  EXPECT_EQ(tids.size(), 2u);
}

TEST(Trace, CapacityCapsRetentionAndCountsDrops) {
  const std::int64_t dropped_before =
      telemetry::MetricsRegistry::global().counter_value(
          "trace.dropped_events");
  telemetry::TraceCollector collector;
  collector.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    // snprintf instead of "e" + to_string(i): gcc-12 misfires -Wrestrict
    // on the concatenation here.
    char name[16];
    std::snprintf(name, sizeof name, "e%d", i);
    collector.instant(name, "obs_test");
  }

  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.dropped(), 6);
  EXPECT_EQ(telemetry::MetricsRegistry::global().counter_value(
                "trace.dropped_events"),
            dropped_before + 6);
  // Overflow drops the newest events; the retained prefix is intact.
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e0");
  EXPECT_EQ(events.back().name, "e3");
  collector.clear();
  EXPECT_EQ(collector.dropped(), 0);
}

}  // namespace
