// Orthogonal-Distinct kernel (Alg. 2) unit tests: correctness across
// explicit slice configurations (including truncated sub-warp prefixes
// and remainder chunks), enumeration invariants, and the bank-conflict
// guarantees of the padded tile.
#include <gtest/gtest.h>

#include "core/launch_helpers.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

struct OdCase {
  Extents ext;
  std::vector<Index> perm;
  OdSlice slice;
};

sim::LaunchResult run_od(sim::Device& dev, const TransposeProblem& p,
                         const OdConfig& cfg,
                         const Tensor<double>& host_in,
                         Tensor<double>* host_out) {
  auto in = dev.alloc_copy<double>(host_in.vec());
  auto out = dev.alloc<double>(p.volume());
  auto t0 = dev.alloc_copy<Index>(cfg.in_offset);
  auto t1 = dev.alloc_copy<Index>(cfg.out_offset);
  const auto res = launch_od<double>(dev, cfg, in, out, t0, t1);
  if (host_out) {
    host_out->vec().assign(out.span().begin(), out.span().end());
  }
  dev.free_all();
  return res;
}

OdSlice make_slice(const TransposeProblem& p, Index x, Index y, Index ba,
                   Index bb) {
  OdSlice s;
  s.dims_in = x;
  s.dims_out = y;
  s.block_a = ba;
  s.block_b = bb;
  s.a_vol = ba;
  for (Index d = 0; d + 1 < x; ++d) s.a_vol *= p.fused.shape.extent(d);
  s.b_vol = bb;
  for (Index j = 0; j + 1 < y; ++j) s.b_vol *= p.fused_out.extent(j);
  return s;
}

void check_correct(const Extents& ext, const std::vector<Index>& perm_v,
                   Index x, Index y, Index ba, Index bb) {
  const Shape shape(ext);
  const Permutation perm(perm_v);
  const auto p = TransposeProblem::make(shape, perm, 8);
  const OdConfig cfg = build_od_config(p, make_slice(p, x, y, ba, bb));

  Tensor<double> host_in(shape);
  host_in.fill_iota();
  Tensor<double> host_out(perm.apply(shape));
  sim::Device dev;
  run_od(dev, p, cfg, host_in, &host_out);
  const Tensor<double> expected = host_transpose(host_in, perm);
  ASSERT_EQ(host_out.vec(), expected.vec())
      << shape.to_string() << perm.to_string() << " slice " << x << "," << y
      << "," << ba << "," << bb;
}

TEST(OdKernel, Square2DWithFullTiles) {
  check_correct({64, 64}, {1, 0}, 1, 1, 32, 32);
}

TEST(OdKernel, PartialChunksOnBothSides) {
  check_correct({70, 50}, {1, 0}, 1, 1, 32, 32);  // 70%32, 50%32 remainders
}

TEST(OdKernel, SubWarpSlices) {
  check_correct({27, 27, 27}, {2, 1, 0}, 1, 1, 27, 27);
  check_correct({27, 27, 27}, {2, 1, 0}, 2, 1, 7, 27);  // 189x27, Fig. 5
}

TEST(OdKernel, CombinedPrefixes) {
  // I = {0,1} (4*16=64 combined), O = {3,2 blocked}.
  check_correct({4, 16, 8, 10}, {3, 2, 1, 0}, 2, 2, 16, 4);
}

TEST(OdKernel, BlockingRemainders) {
  // 27 blocked by 8 -> chunks 4, remainder 3, on both sides.
  check_correct({27, 5, 27}, {2, 1, 0}, 1, 1, 8, 8);
}

TEST(OdKernel, PaddedTileHasNoConflicts) {
  const auto p =
      TransposeProblem::make(Shape({64, 64}), Permutation({1, 0}), 8);
  const OdConfig cfg = build_od_config(p, make_slice(p, 1, 1, 64, 64));
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  sim::Device dev;
  const auto res = run_od(dev, p, cfg, host_in, nullptr);
  EXPECT_EQ(res.counters.smem_bank_conflicts, 0);
}

TEST(OdKernel, UnpaddedTileConflictsHeavily) {
  const auto p =
      TransposeProblem::make(Shape({64, 64}), Permutation({1, 0}), 8);
  OdConfig cfg = build_od_config(p, make_slice(p, 1, 1, 64, 64));
  cfg.tile_pitch = 32;
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  sim::Device dev;
  Tensor<double> host_out(Shape({64, 64}));
  const auto res = run_od(dev, p, cfg, host_in, &host_out);
  // Still functionally correct...
  EXPECT_EQ(host_out.vec(),
            host_transpose(host_in, Permutation({1, 0})).vec());
  // ...but every 32-wide column read serializes 32-way.
  EXPECT_GT(res.counters.smem_bank_conflicts,
            31 * res.counters.smem_load_ops / 2);
}

TEST(OdKernel, FullyCoalescedOnPerfectShapes) {
  const auto p =
      TransposeProblem::make(Shape({64, 64}), Permutation({1, 0}), 8);
  const OdConfig cfg = build_od_config(p, make_slice(p, 1, 1, 64, 64));
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  sim::Device dev;
  const auto res = run_od(dev, p, cfg, host_in, nullptr);
  EXPECT_DOUBLE_EQ(res.counters.coalescing_efficiency(), 1.0);
}

TEST(OdKernel, ConfigValidation) {
  const auto p = TransposeProblem::make(Shape({8, 2, 8, 8}),
                                        Permutation({2, 1, 3, 0}), 8);
  // Overlapping prefixes violate the Orthogonal-Distinct precondition:
  // x=3 includes dim 2, which the output prefix {2} needs.
  OdSlice bad;
  bad.dims_in = 3;
  bad.dims_out = 1;
  bad.block_a = 8;
  bad.block_b = 8;
  bad.a_vol = 128;
  bad.b_vol = 8;
  EXPECT_THROW(build_od_config(p, bad), Error);
  // Inconsistent volume.
  const auto p2 =
      TransposeProblem::make(Shape({64, 64}), Permutation({1, 0}), 8);
  OdSlice s = make_slice(p2, 1, 1, 32, 32);
  s.a_vol = 33;
  EXPECT_THROW(build_od_config(p2, s), Error);
  s.a_vol = 32;
  s.block_b = 100;  // beyond extent
  EXPECT_THROW(build_od_config(p2, s), Error);
}

TEST(OdKernel, EnumerationInvariants) {
  const auto p = TransposeProblem::make(Shape({20, 30, 40, 12}),
                                        Permutation({3, 2, 0, 1}), 8);
  const Index max_vol = 16384;
  const auto slices = enumerate_od_slices(p, max_vol);
  ASSERT_FALSE(slices.empty());
  for (const auto& s : slices) {
    EXPECT_LE(s.a_vol * s.b_vol, std::max<Index>(max_vol, 1024 * 4));
    // Disjointness and buildability.
    EXPECT_NO_THROW(build_od_config(p, s, /*with_offsets=*/false));
  }
}

TEST(OdKernel, EnumerationEmptyForMatchingFvi) {
  const auto p = TransposeProblem::make(Shape({16, 8, 8}),
                                        Permutation({0, 2, 1}), 8);
  EXPECT_TRUE(enumerate_od_slices(p, 1 << 20).empty());
}

class OdRandomSlices : public ::testing::TestWithParam<int> {};

TEST_P(OdRandomSlices, EveryEnumeratedSliceIsCorrect) {
  // Pick one mid-size problem; execute every 5th enumerated slice.
  const auto p = TransposeProblem::make(Shape({9, 6, 10, 8}),
                                        Permutation({2, 3, 1, 0}), 8);
  const auto slices = enumerate_od_slices(p, 8192);
  ASSERT_FALSE(slices.empty());
  const std::size_t idx =
      static_cast<std::size_t>(GetParam()) * slices.size() / 8;
  const OdConfig cfg = build_od_config(p, slices[idx]);
  Tensor<double> host_in(p.shape);
  host_in.fill_iota();
  Tensor<double> host_out(p.perm.apply(p.shape));
  sim::Device dev;
  run_od(dev, p, cfg, host_in, &host_out);
  EXPECT_EQ(host_out.vec(), host_transpose(host_in, p.perm).vec())
      << "slice #" << idx;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OdRandomSlices, ::testing::Range(0, 8));

}  // namespace
}  // namespace ttlg
