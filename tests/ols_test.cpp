#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

#include "common/rng.hpp"
#include "mlr/ols.hpp"

namespace ttlg::mlr {
namespace {

TEST(Ols, RecoversExactLinearModel) {
  Dataset d({"x1", "x2", "intercept"});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x1 = rng.uniform01() * 10;
    const double x2 = rng.uniform01() * 5;
    d.add_row({x1, x2, 1.0}, 3.0 * x1 - 2.0 * x2 + 7.0);
  }
  const auto fit = fit_ols(d);
  EXPECT_NEAR(fit.coefficients[0].estimate, 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1].estimate, -2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2].estimate, 7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_LT(fit.error_percent(d), 1e-6);
}

TEST(Ols, SignificanceSeparatesSignalFromNoise) {
  Dataset d({"signal", "noise"});
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform01();
    const double z = rng.uniform01();
    const double eps = (rng.uniform01() - 0.5) * 0.1;
    d.add_row({x, z}, 5.0 * x + eps);
  }
  const auto fit = fit_ols(d);
  EXPECT_LT(fit.coefficients[0].p_value, 1e-10);  // signal significant
  EXPECT_GT(fit.coefficients[1].p_value, 1e-4);   // noise not
  EXPECT_GT(std::abs(fit.coefficients[0].t_value), 50);
}

TEST(Ols, ThrowsOnCollinearFeatures) {
  Dataset d({"x", "x_again"});
  for (int i = 0; i < 10; ++i) d.add_row({double(i), double(i)}, double(i));
  EXPECT_THROW(fit_ols(d), Error);
}

TEST(Ols, RequiresMoreRowsThanFeatures) {
  Dataset d({"a", "b", "c"});
  d.add_row({1, 2, 3}, 1);
  d.add_row({2, 3, 5}, 2);
  EXPECT_THROW(fit_ols(d), Error);
}

TEST(Ols, SplitIsDeterministicAndProportional) {
  Dataset d({"x"});
  for (int i = 0; i < 1000; ++i) d.add_row({double(i)}, double(i));
  Dataset tr1({"x"}), te1({"x"}), tr2({"x"}), te2({"x"});
  d.split(0.2, 42, tr1, te1);
  d.split(0.2, 42, tr2, te2);
  EXPECT_EQ(tr1.num_rows(), tr2.num_rows());
  EXPECT_EQ(tr1.num_rows() + te1.num_rows(), 1000u);
  EXPECT_NEAR(static_cast<double>(te1.num_rows()), 200.0, 40.0);
  EXPECT_THROW(d.split(0.0, 1, tr1, te1), Error);
}

TEST(Ols, RelativeWeightsImproveRelativeError) {
  // Responses spanning 4 decades with 5% multiplicative noise: plain
  // OLS chases the big rows; weighted OLS balances relative error.
  Dataset d({"x", "intercept"});
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const double x = std::pow(10.0, rng.uniform01() * 4.0);
    const double noise = 1.0 + (rng.uniform01() - 0.5) * 0.1;
    d.add_row({x, 1.0}, (2.0 * x + 1.0) * noise);
  }
  const auto plain = fit_ols(d, false);
  const auto weighted = fit_ols(d, true);
  EXPECT_LT(weighted.error_percent(d), plain.error_percent(d));
}

TEST(Ols, PredictValidatesWidth) {
  Dataset d({"a", "b"});
  for (int i = 0; i < 10; ++i) d.add_row({double(i), 1.0}, double(i));
  const auto fit = fit_ols(d);
  EXPECT_THROW((fit.predict({1.0})), Error);
  EXPECT_NEAR(fit.predict({3.0, 1.0}), 3.0, 1e-9);
}

TEST(Ols, ErrorPercentRejectsZeroResponse) {
  Dataset d({"a"});
  d.add_row({1.0}, 0.0);
  d.add_row({2.0}, 1.0);
  const auto fit_data = Dataset({"a"});
  Dataset good({"a"});
  good.add_row({1.0}, 1.0);
  good.add_row({2.0}, 2.0);
  good.add_row({3.0}, 3.0);
  const auto fit = fit_ols(good);
  EXPECT_THROW(fit.error_percent(d), Error);
}

}  // namespace
}  // namespace ttlg::mlr
