// §V performance model: feature extraction, regression vs analytic
// prediction, and — most importantly — slice RANKING quality (the model
// only needs to order candidates well for Alg. 3 to work).
#include <gtest/gtest.h>

#include <cmath>

#include "core/launch_helpers.hpp"
#include "core/perf_model.hpp"
#include "core/planner.hpp"

namespace ttlg {
namespace {

TEST(PerfModel, FeatureWidthsMatchNames) {
  const auto p =
      TransposeProblem::make(Shape({64, 64}), Permutation({1, 0}), 8);
  const OdConfig od = build_od_config(p, OdSlice{1, 1, 32, 32, 32, 32});
  EXPECT_EQ(PerfModel::od_features(p, od).size(),
            PerfModel::od_feature_names().size());
  const auto p2 = TransposeProblem::make(Shape({8, 2, 8, 8}),
                                         Permutation({2, 1, 3, 0}), 8);
  const OaConfig oa = build_oa_config(p2, OaSlice{3, 8, 3, 8}, false);
  EXPECT_EQ(PerfModel::oa_features(p2, oa).size(),
            PerfModel::oa_feature_names().size());
}

TEST(PerfModel, DefaultCoefficientsPresentAndUsed) {
  const auto coeffs = PerfModel::default_coefficients();
  EXPECT_EQ(coeffs.od.size(), PerfModel::od_feature_names().size());
  EXPECT_EQ(coeffs.oa.size(), PerfModel::oa_feature_names().size());
}

TEST(PerfModel, RegressionWithoutCoefficientsThrows) {
  const auto props = sim::DeviceProperties::tesla_k40c();
  const PerfModel model(props, ModelKind::kRegression,
                        RegressionCoefficients{});
  const auto p =
      TransposeProblem::make(Shape({64, 64}), Permutation({1, 0}), 8);
  const OdConfig od = build_od_config(p, OdSlice{1, 1, 32, 32, 32, 32});
  EXPECT_THROW(model.predict_od(p, od), Error);
}

TEST(PerfModel, AutoFallsBackToAnalyticWhenUntrained) {
  const auto props = sim::DeviceProperties::tesla_k40c();
  const PerfModel analytic(props, ModelKind::kAnalytic);
  const PerfModel auto_untrained(props, ModelKind::kAuto,
                                 RegressionCoefficients{});
  const auto p =
      TransposeProblem::make(Shape({64, 64}), Permutation({1, 0}), 8);
  const OdConfig od = build_od_config(p, OdSlice{1, 1, 32, 32, 32, 32});
  EXPECT_DOUBLE_EQ(analytic.predict_od(p, od),
                   auto_untrained.predict_od(p, od));
}

TEST(PerfModel, PredictionsArePositiveAndFinite) {
  const auto props = sim::DeviceProperties::tesla_k40c();
  for (const ModelKind kind : {ModelKind::kRegression, ModelKind::kAnalytic}) {
    const PerfModel model(props, kind);
    const auto p = TransposeProblem::make(Shape({32, 20, 28}),
                                          Permutation({2, 0, 1}), 8);
    for (const auto& s : enumerate_od_slices(p, 8192)) {
      const double t =
          model.predict_od(p, build_od_config(p, s, false));
      EXPECT_GT(t, 0.0);
      EXPECT_TRUE(std::isfinite(t));
    }
  }
}

/// The property Alg. 3 actually needs: the model's chosen slice must be
/// within a modest factor of the oracle-best slice's true time.
class RankingQuality
    : public ::testing::TestWithParam<std::tuple<ModelKind, int>> {};

TEST_P(RankingQuality, ChoiceWithin25PercentOfOracle) {
  const auto [kind, case_id] = GetParam();
  struct CaseSpec {
    Extents ext;
    std::vector<Index> perm;
  };
  const CaseSpec cases[] = {
      {{64, 48, 40}, {2, 1, 0}},
      {{27, 27, 27, 27}, {3, 1, 0, 2}},
      {{16, 16, 16, 16, 16}, {4, 2, 0, 1, 3}},
  };
  const auto& c = cases[case_id];
  const auto p =
      TransposeProblem::make(Shape(c.ext), Permutation(c.perm), 8);
  const auto props = sim::DeviceProperties::tesla_k40c();
  const PerfModel model(props, kind);

  sim::Device dev(props);
  dev.set_mode(sim::ExecMode::kCountOnly);
  dev.set_sampling(6);
  auto in = dev.alloc_virtual<double>(p.volume());
  auto out = dev.alloc_virtual<double>(p.volume());

  double best_pred = 1e30, chosen_actual = 0, oracle = 1e30;
  for (const auto& s : enumerate_od_slices(p, od_max_slice_vol(p, props, 4))) {
    const OdConfig cfg = build_od_config(p, s);
    auto t0 = dev.alloc_copy<Index>(cfg.in_offset);
    auto t1 = dev.alloc_copy<Index>(cfg.out_offset);
    const double actual =
        launch_od<double>(dev, cfg, in, out, t0, t1).time_s;
    dev.free(t0);
    dev.free(t1);
    const double pred = model.predict_od(p, cfg);
    if (pred < best_pred) {
      best_pred = pred;
      chosen_actual = actual;
    }
    oracle = std::min(oracle, actual);
  }
  EXPECT_LE(chosen_actual, oracle * 1.25)
      << "model choice " << chosen_actual << " vs oracle " << oracle;
}

INSTANTIATE_TEST_SUITE_P(
    Models, RankingQuality,
    ::testing::Combine(::testing::Values(ModelKind::kRegression,
                                         ModelKind::kAnalytic),
                       ::testing::Range(0, 3)));

TEST(PerfModel, FviPredictionsAnalytic) {
  const auto props = sim::DeviceProperties::tesla_k40c();
  const PerfModel model(props);
  const auto ps = TransposeProblem::make(Shape({16, 8, 8}),
                                         Permutation({0, 2, 1}), 8);
  EXPECT_GT(model.predict_fvi_small(ps, build_fvi_small_config(ps, 4, false)),
            0.0);
  const auto pl = TransposeProblem::make(Shape({64, 8, 8}),
                                         Permutation({0, 2, 1}), 8);
  EXPECT_GT(model.predict_fvi_large(pl, build_fvi_large_config(pl, true)),
            0.0);
}

}  // namespace
}  // namespace ttlg
