// Bench-trajectory regression analysis (src/benchlib/perfdiff) against
// the golden fixtures in tests/data: schema checks, case-key and
// time-metric normalization, tolerance-banded verdicts, and the report
// rendering the CI gate greps.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchlib/perfdiff.hpp"
#include "common/error.hpp"

using namespace ttlg;
using bench::BenchFile;
using bench::CaseDiff;
using bench::DiffOptions;

namespace {

std::string fixture(const char* name) {
  return std::string(TTLG_TEST_DATA_DIR) + "/" + name;
}

TEST(CaseKey, FollowsIdentityFieldPriority) {
  using telemetry::Json;
  EXPECT_EQ(bench::case_key(Json::parse(R"({"name": "a", "case_id": "b"})"),
                            0),
            "a");
  EXPECT_EQ(bench::case_key(
                Json::parse(R"({"case_id": "t1", "backend": "ttlg"})"), 0),
            "t1/ttlg");
  EXPECT_EQ(bench::case_key(
                Json::parse(R"({"ablation": "no_fuse", "variant": "v2"})"), 0),
            "no_fuse/v2");
  EXPECT_EQ(bench::case_key(
                Json::parse(R"x({"perm": "(2 0 1)", "device": "k40c"})x"), 0),
            "(2 0 1)/k40c");
  EXPECT_EQ(bench::case_key(Json::parse(R"({"bytes": 64})"), 7), "#7");
}

TEST(LoadBenchFile, ParsesAndNormalizesTheFixture) {
  const BenchFile bf =
      bench::load_bench_file(fixture("BENCH_perfdiff_base.json"));
  EXPECT_EQ(bf.bench, "perfdiff_fixture");
  EXPECT_EQ(bf.schema_version, 1);
  EXPECT_EQ(bf.total_cases, 4u);
  ASSERT_EQ(bf.cases.size(), 3u);  // the metadata-only row is not timed
  EXPECT_EQ(bf.cases[0].key, "transpose_2d_small");
  EXPECT_EQ(bf.cases[0].metric, "real_time_ns");
  EXPECT_DOUBLE_EQ(bf.cases[0].time_ns, 1e6);
  // kernel_ms normalizes to nanoseconds.
  EXPECT_EQ(bf.cases[2].key, "transpose_4d_tiled");
  EXPECT_EQ(bf.cases[2].metric, "kernel_ms");
  EXPECT_DOUBLE_EQ(bf.cases[2].time_ns, 2e6);
}

TEST(LoadBenchFile, SchemaViolationsAreClassified) {
  const auto bad =
      bench::try_load_bench_file(fixture("BENCH_perfdiff_bad.json"));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), ErrorCode::kDataLoss);
  EXPECT_NE(bad.status().message().find("schema_version"), std::string::npos);

  const auto missing = bench::try_load_bench_file(fixture("no_such.json"));
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.status().code(), ErrorCode::kInvalidArgument);
}

TEST(DiffBenches, IdenticalInputsShowNoRegression) {
  const std::vector<BenchFile> base = {
      bench::load_bench_file(fixture("BENCH_perfdiff_base.json"))};
  const auto report = bench::diff_benches(base, base, DiffOptions{});
  EXPECT_EQ(report.cases.size(), 3u);
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.improvements, 0);
  EXPECT_DOUBLE_EQ(report.geomean_speedup, 1.0);
  EXPECT_TRUE(report.only_base.empty());
  EXPECT_TRUE(report.only_new.empty());
}

TEST(DiffBenches, UniformSlowdownRegressesEveryCase) {
  const std::vector<BenchFile> base = {
      bench::load_bench_file(fixture("BENCH_perfdiff_base.json"))};
  const std::vector<BenchFile> slow = {
      bench::load_bench_file(fixture("BENCH_perfdiff_slow.json"))};
  const auto report = bench::diff_benches(base, slow, DiffOptions{});
  ASSERT_EQ(report.cases.size(), 3u);
  EXPECT_TRUE(report.has_regression());
  EXPECT_EQ(report.regressions, 3);
  for (const CaseDiff& d : report.cases) {
    EXPECT_EQ(d.verdict, CaseDiff::Verdict::kRegressed);
    EXPECT_NEAR(d.speedup, 1.0 / 1.5, 1e-12);
  }
  EXPECT_NEAR(report.geomean_speedup, 1.0 / 1.5, 1e-12);
}

TEST(DiffBenches, ToleranceAbsorbsNoiseAndScaleInjectsSlowdowns) {
  const std::vector<BenchFile> base = {
      bench::load_bench_file(fixture("BENCH_perfdiff_base.json"))};
  // A 5% synthetic slowdown sits inside the default 10% noise band...
  DiffOptions noise;
  noise.scale = 1.05;
  EXPECT_FALSE(bench::diff_benches(base, base, noise).has_regression());
  // ...a 50% one does not (this is exactly the CI gate's self-test).
  DiffOptions gate;
  gate.scale = 1.5;
  EXPECT_TRUE(bench::diff_benches(base, base, gate).has_regression());
  // Tightening the tolerance flips the 5% verdict.
  DiffOptions strict;
  strict.scale = 1.05;
  strict.tolerance = 0.01;
  EXPECT_TRUE(bench::diff_benches(base, base, strict).has_regression());
  // Symmetrically, a speedup beyond tolerance counts as an improvement.
  DiffOptions faster;
  faster.scale = 0.5;
  const auto report = bench::diff_benches(base, base, faster);
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.improvements, 3);
}

TEST(DiffBenches, UnmatchedCasesAreReportedNotScored) {
  const std::vector<BenchFile> base = {
      bench::load_bench_file(fixture("BENCH_perfdiff_base.json"))};
  std::vector<BenchFile> renamed = base;
  renamed[0].cases[0].key = "renamed_case";
  const auto report = bench::diff_benches(base, renamed, DiffOptions{});
  EXPECT_EQ(report.cases.size(), 2u);
  ASSERT_EQ(report.only_base.size(), 1u);
  EXPECT_EQ(report.only_base[0], "perfdiff_fixture/transpose_2d_small");
  ASSERT_EQ(report.only_new.size(), 1u);
  EXPECT_EQ(report.only_new[0], "perfdiff_fixture/renamed_case");
  EXPECT_FALSE(report.has_regression());
}

TEST(DiffBenches, FilterRestrictsTheComparedSet) {
  const std::vector<BenchFile> base = {
      bench::load_bench_file(fixture("BENCH_perfdiff_base.json"))};
  DiffOptions opts;
  opts.filter = "transpose_2d_small";
  const auto report = bench::diff_benches(base, base, opts);
  ASSERT_EQ(report.cases.size(), 1u);
  EXPECT_EQ(report.cases[0].key, "transpose_2d_small");
  // Filtered-out rows vanish entirely — they are not "unmatched".
  EXPECT_TRUE(report.only_base.empty());
  EXPECT_TRUE(report.only_new.empty());
}

TEST(DiffBenches, MinGeomeanSpeedupIsAnImprovementGate) {
  const std::vector<BenchFile> base = {
      bench::load_bench_file(fixture("BENCH_perfdiff_base.json"))};
  // Identical times: geomean 1.0 fails a 1.5x requirement...
  DiffOptions gate;
  gate.min_geomean_speedup = 1.5;
  const auto fail = bench::diff_benches(base, base, gate);
  EXPECT_EQ(fail.regressions, 0);
  EXPECT_FALSE(fail.geomean_met);
  EXPECT_TRUE(fail.has_regression());
  EXPECT_NE(bench::render_report(fail).find("FAILED"), std::string::npos);
  // ...a 2x-faster candidate passes it (scale 0.5 halves the times).
  DiffOptions ok = gate;
  ok.scale = 0.5;
  const auto pass = bench::diff_benches(base, base, ok);
  EXPECT_TRUE(pass.geomean_met);
  EXPECT_FALSE(pass.has_regression());
  EXPECT_NE(bench::render_report(pass).find("geomean gate"),
            std::string::npos);
  // A filter matching nothing must FAIL the gate, not pass vacuously.
  DiffOptions vacuous = ok;
  vacuous.filter = "no_such_case";
  const auto empty = bench::diff_benches(base, base, vacuous);
  EXPECT_FALSE(empty.geomean_met);
  EXPECT_TRUE(empty.has_regression());
}

TEST(RenderReport, NamesTheRegressionsAndSummarizes) {
  const std::vector<BenchFile> base = {
      bench::load_bench_file(fixture("BENCH_perfdiff_base.json"))};
  const std::vector<BenchFile> slow = {
      bench::load_bench_file(fixture("BENCH_perfdiff_slow.json"))};
  const auto report = bench::diff_benches(base, slow, DiffOptions{});

  const std::string text = bench::render_report(report);
  EXPECT_NE(text.find("transpose_2d_small"), std::string::npos);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("3 regressed"), std::string::npos);

  const std::string csv = bench::render_report(report, /*csv=*/true);
  EXPECT_NE(csv.find("perfdiff_fixture,transpose_2d_small"),
            std::string::npos);
}

}  // namespace
