#include <gtest/gtest.h>

#include "common/error.hpp"

#include "tensor/permutation.hpp"

namespace ttlg {
namespace {

TEST(Permutation, ValidatesEntries) {
  EXPECT_NO_THROW(Permutation({2, 0, 1}));
  EXPECT_THROW((Permutation({0, 0, 1})), Error);  // repeated
  EXPECT_THROW((Permutation({0, 3, 1})), Error);  // out of range
  EXPECT_THROW((Permutation({-1, 0})), Error);
}

TEST(Permutation, IdentityFactoryAndPredicate) {
  const auto id = Permutation::identity(4);
  EXPECT_TRUE(id.is_identity());
  EXPECT_TRUE(id.fvi_matches());
  EXPECT_FALSE(Permutation({0, 2, 1}).is_identity());
  EXPECT_TRUE(Permutation({0, 2, 1}).fvi_matches());
  EXPECT_FALSE(Permutation({1, 0, 2}).fvi_matches());
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation p({3, 1, 4, 0, 2});
  const Permutation inv = p.inverse();
  for (Index k = 0; k < p.rank(); ++k) {
    EXPECT_EQ(inv[p[k]], k);
    EXPECT_EQ(p[inv[k]], k);
  }
}

TEST(Permutation, PositionOfIsInverseLookup) {
  const Permutation p({2, 0, 1});
  EXPECT_EQ(p.position_of(2), 0);
  EXPECT_EQ(p.position_of(0), 1);
  EXPECT_EQ(p.position_of(1), 2);
  EXPECT_THROW(p.position_of(3), Error);
}

TEST(Permutation, ApplyPermutesExtents) {
  // Output dim j has extent of input dim perm[j].
  const Shape in({7, 8, 9});
  const Shape out = Permutation({2, 0, 1}).apply(in);
  EXPECT_EQ(out, Shape({9, 7, 8}));
  EXPECT_THROW((Permutation({1, 0}).apply(in)), Error);
}

TEST(Permutation, RoundTripThroughApply) {
  const Shape in({3, 5, 2, 7});
  const Permutation p({1, 3, 0, 2});
  EXPECT_EQ(p.inverse().apply(p.apply(in)), in);
}

TEST(Permutation, ToString) {
  EXPECT_EQ(Permutation({1, 0}).to_string(), "(1 0)");
}

}  // namespace
}  // namespace ttlg
