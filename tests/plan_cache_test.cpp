// PlanCache failure semantics: failing keys are never cached, degraded
// plans are served but not retained, and the hit/miss/failure/eviction
// counters stay consistent through all of it.
#include <gtest/gtest.h>

#include "core/plan_cache.hpp"
#include "gpusim/fault_injector.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

const Shape kShape({40, 9, 40});
const Permutation kPerm({2, 1, 0});

TEST(PlanCacheFailures, ThrowingKeysAreCountedAndNeverCached) {
  sim::Device dev;
  PlanCache cache;
  PlanOptions bad;
  bad.elem_size = 3;  // rejected by TransposeProblem::make every time
  for (int i = 0; i < 3; ++i)
    EXPECT_THROW(cache.get(dev, kShape, kPerm, bad), Error);
  EXPECT_EQ(cache.stats().failures, 3);
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheFailures, PermanentlyFailingPlanIsNotCached) {
  sim::Device dev;
  PlanCache cache;
  PlanOptions opts;
  opts.enable_fallback = false;
  opts.faults = "alloc.every=1";
  EXPECT_THROW(cache.get(dev, kShape, kPerm, opts), Error);
  EXPECT_EQ(cache.stats().failures, 1);
  EXPECT_EQ(cache.size(), 0u);
  // Once the fault clears, the same key plans and caches normally.
  opts.faults.reset();
  bool hit = true;
  const Plan& plan = cache.get(dev, kShape, kPerm, opts, &hit);
  EXPECT_FALSE(hit);
  EXPECT_TRUE(plan.valid());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PlanCacheFailures, DegradedPlansAreServedButNotRetained) {
  sim::Device dev;
  PlanCache cache;
  PlanOptions opts;
  opts.faults = "alloc.every=1";  // forces the naive fallback plan
  bool hit = true;
  const Plan& degraded = cache.get(dev, kShape, kPerm, opts, &hit);
  EXPECT_FALSE(hit);
  EXPECT_TRUE(degraded.degraded());
  EXPECT_EQ(cache.size(), 0u);  // not retained
  EXPECT_EQ(cache.stats().uncacheable, 1);
  EXPECT_EQ(cache.stats().misses, 1);

  // The returned reference is usable until the next get().
  Tensor<double> host(kShape);
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out = dev.alloc<double>(kShape.volume());
  degraded.execute<double>(in, out);
  const Tensor<double> expected = host_transpose(host, kPerm);
  for (Index i = 0; i < kShape.volume(); ++i)
    ASSERT_EQ(out[i], expected.at(i)) << i;

  // With the pressure gone, the same key replans (a miss, not a hit)
  // and this time the full-quality plan is cached.
  opts.faults.reset();
  const Plan& healthy = cache.get(dev, kShape, kPerm, opts, &hit);
  EXPECT_FALSE(hit);
  EXPECT_FALSE(healthy.degraded());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 2);
  // And now it hits.
  cache.get(dev, kShape, kPerm, opts, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(PlanCacheFailures, CountersStayConsistentUnderEviction) {
  sim::Device dev;
  PlanCache cache(2);
  // capacity 2: 32 and 48 resident, 32 re-hit, then 64 evicts the LRU
  // (48), and re-requesting 48 misses and evicts 32.
  const std::vector<Extents> shapes = {
      {32, 32}, {48, 32}, {32, 32}, {64, 32}, {48, 32}};
  int gets = 0;
  for (const auto& ext : shapes) {
    try {
      cache.get(dev, Shape(ext), Permutation({1, 0}));
    } catch (const Error&) {
    }
    ++gets;
  }
  const auto& s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.failures, gets);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 4);
  EXPECT_EQ(s.evictions, 2);
}

}  // namespace
}  // namespace ttlg
