// Plan serialization: save/load round trips for every schema, with the
// reloaded plan producing identical results and identical simulated
// behaviour; malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "core/plan_io.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

class PlanIoRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  static std::pair<Extents, std::vector<Index>> pick(int i) {
    switch (i) {
      case 0:
        return {{6, 6, 6}, {0, 1, 2}};          // copy
      case 1:
        return {{64, 6, 8}, {0, 2, 1}};         // FVI large
      case 2:
        return {{16, 8, 8}, {0, 2, 1}};         // FVI small
      case 3:
        return {{40, 9, 40}, {2, 1, 0}};        // OD
      default:
        return {{8, 2, 24, 24, 24}, {2, 1, 3, 0, 4}};  // OA
    }
  }
};

TEST_P(PlanIoRoundTrip, SavedPlanReloadsAndAgrees) {
  const auto [ext, perm_v] = pick(GetParam());
  const Shape shape(ext);
  const Permutation perm(perm_v);
  sim::Device dev;
  Plan original = make_plan(dev, shape, perm);

  std::stringstream buf;
  save_plan(buf, original);
  Plan reloaded = load_plan(dev, buf);

  EXPECT_EQ(reloaded.schema(), original.schema());
  EXPECT_NEAR(reloaded.predicted_time_s(), original.predicted_time_s(),
              original.predicted_time_s() * 1e-12);

  Tensor<double> host(shape);
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out1 = dev.alloc<double>(shape.volume());
  auto out2 = dev.alloc<double>(shape.volume());
  const auto r1 = original.execute<double>(in, out1);
  const auto r2 = reloaded.execute<double>(in, out2);
  // Identical kernel decisions -> identical simulated behaviour.
  EXPECT_EQ(r1.counters.gld_transactions, r2.counters.gld_transactions);
  EXPECT_EQ(r1.counters.gst_transactions, r2.counters.gst_transactions);
  EXPECT_DOUBLE_EQ(r1.time_s, r2.time_s);
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(out1[i], out2[i]) << i;
  const Tensor<double> expected = host_transpose(host, perm);
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(out2[i], expected.at(i)) << i;
}

INSTANTIATE_TEST_SUITE_P(Schemas, PlanIoRoundTrip, ::testing::Range(0, 5));

ErrorCode load_code(sim::Device& dev, const std::string& text) {
  std::stringstream s(text);
  try {
    load_plan(dev, s);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "load_plan accepted: " << text.substr(0, 60);
  return ErrorCode::kInternal;
}

TEST(PlanIo, RejectsMalformedInputWithClassifiedCodes) {
  sim::Device dev;
  EXPECT_EQ(load_code(dev, "not-a-plan 1\n"), ErrorCode::kDataLoss);
  // Version mismatch (including pre-checksum version-1 files) is
  // kUnsupported with a re-save hint, not data loss.
  EXPECT_EQ(load_code(dev, "ttlg-plan 99\n"), ErrorCode::kUnsupported);
  EXPECT_EQ(load_code(dev, "ttlg-plan 1\nshape 4 4\n"),
            ErrorCode::kUnsupported);
  // Right version but no checksum record.
  EXPECT_EQ(load_code(dev, "ttlg-plan 3\nshape 4 4\n"),
            ErrorCode::kDataLoss);
  EXPECT_EQ(load_code(dev, ""), ErrorCode::kDataLoss);
  Plan empty;
  std::stringstream out;
  EXPECT_THROW(save_plan(out, empty), Error);
}

std::string saved_plan_text(sim::Device& dev) {
  Plan plan = make_plan(dev, Shape({40, 9, 40}), Permutation({2, 1, 0}));
  std::stringstream buf;
  save_plan(buf, plan);
  return buf.str();
}

TEST(PlanIo, DetectsTruncation) {
  sim::Device dev;
  const std::string text = saved_plan_text(dev);
  // Every proper prefix must be rejected, and classified kDataLoss
  // (except the intact file itself).
  for (std::size_t len = 0; len < text.size(); len += 7)
    EXPECT_EQ(load_code(dev, text.substr(0, len)), ErrorCode::kDataLoss)
        << "prefix length " << len;
}

TEST(PlanIo, DetectsBitFlips) {
  sim::Device dev;
  const std::string text = saved_plan_text(dev);
  for (std::size_t pos = 0; pos < text.size(); pos += 11) {
    std::string corrupt = text;
    corrupt[pos] ^= 0x4;
    if (corrupt == text) continue;
    std::stringstream s(corrupt);
    try {
      load_plan(dev, s);
      ADD_FAILURE() << "accepted bit flip at " << pos;
    } catch (const Error& e) {
      // Flips in the version digit may classify as kUnsupported; every
      // other corruption must be kDataLoss. Nothing may escape
      // unclassified — that is the point of the test.
      EXPECT_TRUE(e.code() == ErrorCode::kDataLoss ||
                  e.code() == ErrorCode::kUnsupported)
          << "flip at " << pos << ": " << e.what();
    }
  }
}

TEST(PlanIo, RejectsGarbage) {
  sim::Device dev;
  Rng rng(20260805);
  for (int trial = 0; trial < 64; ++trial) {
    std::string garbage(static_cast<std::size_t>(rng() % 256), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng() % 256);
    std::stringstream s(garbage);
    EXPECT_THROW(load_plan(dev, s), Error) << "trial " << trial;
  }
}

TEST(PlanIo, TryLoadReturnsStatusInsteadOfThrowing) {
  sim::Device dev;
  std::stringstream bad("ttlg-plan 3\ngarbage\n");
  auto result = try_load_plan(dev, bad);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), ErrorCode::kDataLoss);

  std::stringstream good(saved_plan_text(dev));
  auto ok = try_load_plan(dev, good);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->schema(), Schema::kOrthogonalDistinct);
}

TEST(PlanIo, FormatIsHumanReadable) {
  sim::Device dev;
  Plan plan = make_plan(dev, Shape({64, 64}), Permutation({1, 0}));
  std::stringstream buf;
  save_plan(buf, plan);
  const std::string text = buf.str();
  EXPECT_NE(text.find("ttlg-plan 3"), std::string::npos);
  EXPECT_NE(text.find("shape 64 64"), std::string::npos);
  EXPECT_NE(text.find("perm 1 0"), std::string::npos);
  EXPECT_NE(text.find("od "), std::string::npos);
  EXPECT_NE(text.find("checksum "), std::string::npos);
}

}  // namespace
}  // namespace ttlg
