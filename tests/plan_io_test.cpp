// Plan serialization: save/load round trips for every schema, with the
// reloaded plan producing identical results and identical simulated
// behaviour; malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "core/plan_io.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

class PlanIoRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  static std::pair<Extents, std::vector<Index>> pick(int i) {
    switch (i) {
      case 0:
        return {{6, 6, 6}, {0, 1, 2}};          // copy
      case 1:
        return {{64, 6, 8}, {0, 2, 1}};         // FVI large
      case 2:
        return {{16, 8, 8}, {0, 2, 1}};         // FVI small
      case 3:
        return {{40, 9, 40}, {2, 1, 0}};        // OD
      default:
        return {{8, 2, 24, 24, 24}, {2, 1, 3, 0, 4}};  // OA
    }
  }
};

TEST_P(PlanIoRoundTrip, SavedPlanReloadsAndAgrees) {
  const auto [ext, perm_v] = pick(GetParam());
  const Shape shape(ext);
  const Permutation perm(perm_v);
  sim::Device dev;
  Plan original = make_plan(dev, shape, perm);

  std::stringstream buf;
  save_plan(buf, original);
  Plan reloaded = load_plan(dev, buf);

  EXPECT_EQ(reloaded.schema(), original.schema());
  EXPECT_NEAR(reloaded.predicted_time_s(), original.predicted_time_s(),
              original.predicted_time_s() * 1e-12);

  Tensor<double> host(shape);
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out1 = dev.alloc<double>(shape.volume());
  auto out2 = dev.alloc<double>(shape.volume());
  const auto r1 = original.execute<double>(in, out1);
  const auto r2 = reloaded.execute<double>(in, out2);
  // Identical kernel decisions -> identical simulated behaviour.
  EXPECT_EQ(r1.counters.gld_transactions, r2.counters.gld_transactions);
  EXPECT_EQ(r1.counters.gst_transactions, r2.counters.gst_transactions);
  EXPECT_DOUBLE_EQ(r1.time_s, r2.time_s);
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(out1[i], out2[i]) << i;
  const Tensor<double> expected = host_transpose(host, perm);
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(out2[i], expected.at(i)) << i;
}

INSTANTIATE_TEST_SUITE_P(Schemas, PlanIoRoundTrip, ::testing::Range(0, 5));

TEST(PlanIo, RejectsMalformedInput) {
  sim::Device dev;
  {
    std::stringstream s("not-a-plan 1\n");
    EXPECT_THROW(load_plan(dev, s), Error);
  }
  {
    std::stringstream s("ttlg-plan 99\n");
    EXPECT_THROW(load_plan(dev, s), Error);  // version mismatch
  }
  {
    std::stringstream s("ttlg-plan 1\nshape 4 4\n");  // truncated
    EXPECT_THROW(load_plan(dev, s), Error);
  }
  Plan empty;
  std::stringstream out;
  EXPECT_THROW(save_plan(out, empty), Error);
}

TEST(PlanIo, FormatIsHumanReadable) {
  sim::Device dev;
  Plan plan = make_plan(dev, Shape({64, 64}), Permutation({1, 0}));
  std::stringstream buf;
  save_plan(buf, plan);
  const std::string text = buf.str();
  EXPECT_NE(text.find("ttlg-plan 1"), std::string::npos);
  EXPECT_NE(text.find("shape 64 64"), std::string::npos);
  EXPECT_NE(text.find("perm 1 0"), std::string::npos);
  EXPECT_NE(text.find("od "), std::string::npos);
}

}  // namespace
}  // namespace ttlg
