// Plan layer: make_plan/execute across schemas, plan cache, move
// semantics, error paths, and the queryable model API.
#include <gtest/gtest.h>

#include "core/ttlg.hpp"

namespace ttlg {
namespace {

TEST(Plan, DescribeAndPredictedTime) {
  sim::Device dev;
  Plan plan = make_plan(dev, Shape({64, 64}), Permutation({1, 0}));
  EXPECT_TRUE(plan.valid());
  EXPECT_EQ(plan.schema(), Schema::kOrthogonalDistinct);
  EXPECT_GT(plan.predicted_time_s(), 0.0);
  EXPECT_GE(plan.plan_wall_s(), 0.0);
  EXPECT_NE(plan.describe().find("Orthogonal-Distinct"), std::string::npos);
}

TEST(Plan, ExecuteValidatesBuffers) {
  sim::Device dev;
  const Shape shape({32, 32});
  Plan plan = make_plan(dev, shape, Permutation({1, 0}));
  auto in = dev.alloc<double>(shape.volume());
  auto small = dev.alloc<double>(10);
  EXPECT_THROW(plan.execute<double>(in, small), Error);
  // Element type must match the planned element size (default 8).
  auto fin = dev.alloc<float>(shape.volume());
  auto fout = dev.alloc<float>(shape.volume());
  EXPECT_THROW(plan.execute<float>(fin, fout), Error);
}

TEST(Plan, EmptyPlanRejectsExecution) {
  Plan plan;
  sim::Device dev;
  auto buf = dev.alloc<double>(4);
  EXPECT_FALSE(plan.valid());
  EXPECT_THROW(plan.execute<double>(buf, buf), Error);
}

TEST(Plan, MoveTransfersOwnership) {
  sim::Device dev;
  Plan a = make_plan(dev, Shape({64, 64}), Permutation({1, 0}));
  const std::int64_t before = dev.bytes_allocated();
  Plan b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dev.bytes_allocated(), before);  // no double-ownership
  auto in = dev.alloc<double>(64 * 64);
  auto out = dev.alloc<double>(64 * 64);
  EXPECT_NO_THROW(b.execute<double>(in, out));
}

TEST(Plan, DestructorFreesOffsetArrays) {
  sim::Device dev;
  const std::int64_t base = dev.bytes_allocated();
  {
    Plan plan = make_plan(dev, Shape({64, 64}), Permutation({1, 0}));
    EXPECT_GT(dev.bytes_allocated(), base);
  }
  EXPECT_EQ(dev.bytes_allocated(), base);
}

TEST(Plan, SurvivesDeviceFreeAll) {
  sim::Device dev;
  Plan plan = make_plan(dev, Shape({64, 64}), Permutation({1, 0}));
  dev.free_all();
  // Destruction must not throw even though the device reclaimed the
  // arrays out from under the plan.
}

TEST(PlanCacheTest, HitsAfterFirstCall) {
  sim::Device dev;
  PlanCache cache;
  bool hit = true;
  const Plan& p1 =
      cache.get(dev, Shape({32, 32}), Permutation({1, 0}), {}, &hit);
  EXPECT_FALSE(hit);
  const Plan& p2 =
      cache.get(dev, Shape({32, 32}), Permutation({1, 0}), {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(&p1, &p2);
  // Different key -> new plan.
  cache.get(dev, Shape({32, 32}), Permutation({0, 1}), {}, &hit);
  EXPECT_FALSE(hit);
  PlanOptions fopts;
  fopts.elem_size = 4;
  cache.get(dev, Shape({32, 32}), Permutation({1, 0}), fopts, &hit);
  EXPECT_FALSE(hit);  // element size participates in the key
  EXPECT_EQ(cache.size(), 3u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PredictApi, PositiveAndConsistentWithPlan) {
  const auto props = sim::DeviceProperties::tesla_k40c();
  const Shape shape({24, 18, 30});
  const Permutation perm({2, 0, 1});
  const double q = predict_transpose_time(props, shape, perm);
  EXPECT_GT(q, 0.0);
  sim::Device dev(props);
  Plan plan = make_plan(dev, shape, perm);
  EXPECT_DOUBLE_EQ(plan.predicted_time_s(), q);
}

TEST(PredictApi, ModelKindsBothWork) {
  const auto props = sim::DeviceProperties::tesla_k40c();
  PlanOptions reg, ana;
  reg.model = ModelKind::kRegression;
  ana.model = ModelKind::kAnalytic;
  const Shape shape({40, 40, 40});
  const Permutation perm({2, 1, 0});
  EXPECT_GT(predict_transpose_time(props, shape, perm, reg), 0.0);
  EXPECT_GT(predict_transpose_time(props, shape, perm, ana), 0.0);
}

TEST(Plan, BandwidthHelper) {
  // 2 * 1e9 bytes in 1 second = 2 GB/s.
  EXPECT_DOUBLE_EQ(achieved_bandwidth_gbps(125'000'000, 8, 1.0), 2.0);
  EXPECT_THROW(achieved_bandwidth_gbps(1, 8, 0.0), Error);
}

TEST(Plan, TransposeConvenienceWrapper) {
  sim::Device dev;
  const Shape shape({20, 30});
  Tensor<double> host(shape);
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out = dev.alloc<double>(shape.volume());
  Plan plan;
  const auto res =
      transpose<double>(dev, in, out, shape, Permutation({1, 0}), {}, &plan);
  EXPECT_GT(res.time_s, 0.0);
  EXPECT_TRUE(plan.valid());
  const Tensor<double> expected = host_transpose(host, Permutation({1, 0}));
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(out[i], expected.at(i));
}

}  // namespace
}  // namespace ttlg
