#include <gtest/gtest.h>

#include "common/error.hpp"

#include "core/problem.hpp"

namespace ttlg {
namespace {

TEST(Problem, MakeValidates) {
  EXPECT_THROW(
      TransposeProblem::make(Shape({4}), Permutation({0}), 3),  // bad size
      Error);
  EXPECT_THROW(
      TransposeProblem::make(Shape({4}), Permutation({0}), 16),  // bad size
      Error);
  // 1- and 2-byte elements are part of the supported range.
  EXPECT_EQ(TransposeProblem::make(Shape({4}), Permutation({0}), 1).elem_size,
            1);
  EXPECT_EQ(TransposeProblem::make(Shape({4}), Permutation({0}), 2).elem_size,
            2);
  EXPECT_THROW(
      TransposeProblem::make(Shape({4, 4}), Permutation({0}), 8),
      Error);
  EXPECT_THROW(TransposeProblem::make(Shape(Extents{}),
                                      Permutation(std::vector<Index>{}), 8),
               Error);
  const auto p =
      TransposeProblem::make(Shape({4, 4}), Permutation({1, 0}), 4);
  EXPECT_EQ(p.elem_size, 4);
  EXPECT_EQ(p.payload_bytes(), 2 * 16 * 4);
}

TEST(Problem, FusedFieldsPopulated) {
  const auto p = TransposeProblem::make(Shape({3, 4, 5, 6}),
                                        Permutation({3, 1, 2, 0}), 8);
  EXPECT_EQ(p.scaled_rank(), 3);
  EXPECT_EQ(p.fused_out, Shape({6, 20, 3}));
}

TEST(Problem, InputPrefixReaching) {
  const Shape s({4, 8, 16});
  EXPECT_EQ(input_prefix_reaching(s, 1), 0);
  EXPECT_EQ(input_prefix_reaching(s, 4), 1);
  EXPECT_EQ(input_prefix_reaching(s, 5), 2);
  EXPECT_EQ(input_prefix_reaching(s, 32), 2);
  EXPECT_EQ(input_prefix_reaching(s, 33), 3);
  EXPECT_EQ(input_prefix_reaching(s, 1'000'000), 3);  // exhausts rank
}

TEST(Problem, OutputPrefixReaching) {
  const Shape s({4, 8, 16});
  const Permutation p({2, 0, 1});  // output extents 16, 4, 8
  EXPECT_EQ(output_prefix_reaching(s, p, 16), 1);
  EXPECT_EQ(output_prefix_reaching(s, p, 17), 2);
  EXPECT_EQ(output_prefix_reaching(s, p, 64), 2);
}

TEST(Problem, DisjointnessPaperExamples) {
  // [a,b,c,d] all 32 -> [d,c,b,a]: I={a}, O={d} disjoint.
  EXPECT_TRUE(fvi_prefixes_disjoint(Shape({32, 32, 32, 32}),
                                    Permutation({3, 2, 1, 0}), 32));
  // [a,b,c,d] = 8,2,8,8 -> [c,b,d,a]: I={a,b,c}, O={c,b,d} overlap
  // (§III's motivating Orthogonal-Arbitrary example).
  EXPECT_FALSE(fvi_prefixes_disjoint(Shape({8, 2, 8, 8}),
                                     Permutation({2, 1, 3, 0}), 32));
  // Matching FVI always overlaps (dim 0 on both sides).
  EXPECT_FALSE(fvi_prefixes_disjoint(Shape({64, 64}),
                                     Permutation({0, 1}), 32));
}

TEST(Problem, DisjointnessDependsOnTarget) {
  // [16,2,32,32] -> reversed: with target 32, I={0,1} (16*2=32) and
  // O={3} disjoint; with target 64, I={0,1,2} and O={3,2} overlap.
  const Shape s({16, 2, 32, 32});
  const Permutation p({3, 2, 1, 0});
  EXPECT_TRUE(fvi_prefixes_disjoint(s, p, 32));
  EXPECT_FALSE(fvi_prefixes_disjoint(s, p, 64));
}

}  // namespace
}  // namespace ttlg
