// Profiler aggregation and the batched-plan API.
#include <gtest/gtest.h>

#include "core/batched_plan.hpp"
#include "gpusim/profiler.hpp"
#include "tensor/host_transpose.hpp"

namespace ttlg {
namespace {

TEST(Profiler, AggregatesByKernel) {
  sim::Device dev;
  const Shape shape({64, 64});
  auto in = dev.alloc<double>(shape.volume());
  auto out = dev.alloc<double>(shape.volume());
  Plan plan = make_plan(dev, shape, Permutation({1, 0}));

  sim::Profiler prof;
  for (int i = 0; i < 3; ++i)
    prof.record("orthogonal_distinct", plan.execute<double>(in, out));
  Plan copy_plan = make_plan(dev, shape, Permutation({0, 1}));
  prof.record("fvi_match_large", copy_plan.execute<double>(in, out));

  EXPECT_EQ(prof.distinct_kernels(), 2u);
  EXPECT_GT(prof.total_time_s(), 0.0);
  const std::string report = prof.report();
  EXPECT_NE(report.find("orthogonal_distinct"), std::string::npos);
  EXPECT_NE(report.find("fvi_match_large"), std::string::npos);
  prof.clear();
  EXPECT_EQ(prof.distinct_kernels(), 0u);
}

TEST(BatchedPlanTest, ReusesOnePlanAcrossBatch) {
  sim::Device dev;
  const Shape shape({32, 24, 8});
  const Permutation perm({2, 0, 1});
  BatchedPlan batched(dev, shape, perm);

  constexpr int kBatch = 4;
  std::vector<Tensor<double>> hosts;
  std::vector<std::pair<sim::DeviceBuffer<double>, sim::DeviceBuffer<double>>>
      pairs;
  for (int i = 0; i < kBatch; ++i) {
    hosts.emplace_back(shape);
    hosts.back().fill_random(static_cast<std::uint64_t>(i));
    pairs.emplace_back(dev.alloc_copy<double>(hosts.back().vec()),
                       dev.alloc<double>(shape.volume()));
  }
  const auto res = batched.execute<double>(pairs);
  ASSERT_EQ(res.per_call_s.size(), static_cast<std::size_t>(kBatch));
  EXPECT_GT(res.total_time_s, 0.0);
  for (int i = 0; i < kBatch; ++i) {
    const Tensor<double> expected = host_transpose(hosts[i], perm);
    for (Index j = 0; j < shape.volume(); ++j)
      ASSERT_EQ(pairs[i].second[j], expected.at(j)) << "member " << i;
  }
}

TEST(BatchedPlanTest, EpilogueAndValidation) {
  sim::Device dev;
  const Shape shape({16, 16});
  BatchedPlan batched(dev, shape, Permutation({1, 0}));
  std::vector<std::pair<sim::DeviceBuffer<double>, sim::DeviceBuffer<double>>>
      empty;
  EXPECT_THROW(batched.execute<double>(empty), Error);

  Tensor<double> host(shape);
  host.fill_iota();
  std::vector<std::pair<sim::DeviceBuffer<double>, sim::DeviceBuffer<double>>>
      one{{dev.alloc_copy<double>(host.vec()),
           dev.alloc<double>(shape.volume())}};
  batched.execute<double>(one, 3.0, 0.0);
  const Tensor<double> permuted = host_transpose(host, Permutation({1, 0}));
  for (Index j = 0; j < shape.volume(); ++j)
    ASSERT_DOUBLE_EQ(one[0].second[j], 3.0 * permuted.at(j));
}

// Regression for the batched counter aggregation: the batched result
// must equal the member-wise sum of per-call counters — INCLUDING
// grid_blocks, which LaunchCounters::operator+= historically skipped
// (BatchedPlan compensated with a hand-written accumulation, so any
// other += user silently under-counted).
TEST(BatchedPlanTest, CountersEqualSumOfPerCallCounters) {
  sim::Device dev;
  const Shape shape({32, 24, 8});
  const Permutation perm({2, 0, 1});
  BatchedPlan batched(dev, shape, perm);

  constexpr int kBatch = 3;
  std::vector<Tensor<double>> hosts;
  std::vector<std::pair<sim::DeviceBuffer<double>, sim::DeviceBuffer<double>>>
      pairs;
  for (int i = 0; i < kBatch; ++i) {
    hosts.emplace_back(shape);
    hosts.back().fill_random(static_cast<std::uint64_t>(100 + i));
    pairs.emplace_back(dev.alloc_copy<double>(hosts.back().vec()),
                       dev.alloc<double>(shape.volume()));
  }
  const auto batch_res = batched.execute<double>(pairs);

  sim::LaunchCounters expected;
  for (const auto& [in, out] : pairs)
    expected += batched.plan().execute<double>(in, out).counters;

  EXPECT_EQ(batch_res.counters.grid_blocks, expected.grid_blocks);
  EXPECT_GT(batch_res.counters.grid_blocks, 0);
  EXPECT_EQ(batch_res.counters.gld_transactions, expected.gld_transactions);
  EXPECT_EQ(batch_res.counters.gst_transactions, expected.gst_transactions);
  EXPECT_EQ(batch_res.counters.smem_bank_conflicts,
            expected.smem_bank_conflicts);
}

TEST(BatchedPlanTest, TryExecuteReturnsValueOnSuccess) {
  sim::Device dev;
  const Shape shape({16, 16});
  const Permutation perm({1, 0});
  BatchedPlan batched(dev, shape, perm);
  Tensor<double> host(shape);
  host.fill_iota();
  std::vector<std::pair<sim::DeviceBuffer<double>, sim::DeviceBuffer<double>>>
      batch{{dev.alloc_copy<double>(host.vec()),
             dev.alloc<double>(shape.volume())}};
  const auto res = batched.try_execute<double>(batch);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res.status().is_ok());
  EXPECT_GT(res->total_time_s, 0.0);
  ASSERT_EQ(res->per_call_s.size(), 1u);
  const Tensor<double> expected = host_transpose(host, perm);
  for (Index j = 0; j < shape.volume(); ++j)
    ASSERT_EQ(batch[0].second[j], expected.at(j));
}

TEST(BatchedPlanTest, TryExecuteClassifiesFailuresAsStatus) {
  sim::Device dev;
  const Shape shape({16, 16});
  BatchedPlan batched(dev, shape, Permutation({1, 0}));
  // A wrong-size member is a classified InvalidArgument: try_execute
  // must return it as a Status, never unwind.
  std::vector<std::pair<sim::DeviceBuffer<double>, sim::DeviceBuffer<double>>>
      bad{{dev.alloc<double>(shape.volume()), dev.alloc<double>(8)}};
  const auto res = batched.try_execute<double>(bad);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.status().code(), ErrorCode::kInvalidArgument);
  // An empty batch is equally classified.
  std::vector<std::pair<sim::DeviceBuffer<double>, sim::DeviceBuffer<double>>>
      empty;
  const auto res2 = batched.try_execute<double>(empty);
  ASSERT_FALSE(res2.has_value());
  EXPECT_EQ(res2.status().code(), ErrorCode::kInvalidArgument);
}

TEST(DevicePresets, GenerationsAreOrdered) {
  const auto k40 = sim::DeviceProperties::tesla_k40c();
  const auto p100 = sim::DeviceProperties::pascal_p100();
  const auto v100 = sim::DeviceProperties::volta_v100();
  EXPECT_LT(k40.effective_bandwidth_gbps, p100.effective_bandwidth_gbps);
  EXPECT_LT(p100.effective_bandwidth_gbps, v100.effective_bandwidth_gbps);
  EXPECT_LT(k40.num_sms, p100.num_sms);
  EXPECT_NE(p100.to_string().find("P100"), std::string::npos);

  // A large streaming transpose should run faster on newer profiles.
  const Shape shape({256, 64, 256});
  const Permutation perm({2, 1, 0});
  double prev = 1e9;
  for (const auto& props : {k40, p100, v100}) {
    sim::Device dev(props);
    dev.set_mode(sim::ExecMode::kCountOnly);
    dev.set_sampling(4);
    auto in = dev.alloc_virtual<double>(shape.volume());
    auto out = dev.alloc_virtual<double>(shape.volume());
    PlanOptions opts;
    opts.model = ModelKind::kAnalytic;
    Plan plan = make_plan(dev, shape, perm, opts);
    const double t = plan.execute<double>(in, out).time_s;
    EXPECT_LT(t, prev) << props.name;
    prev = t;
  }
}

}  // namespace
}  // namespace ttlg
