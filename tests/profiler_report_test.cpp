// Profiler report rendering: multi-kernel aggregation, sort order, and
// degenerate inputs (empty profiler, zero-time launches — the division
// guards in the percentage/efficiency columns).
#include <gtest/gtest.h>

#include "gpusim/profiler.hpp"

namespace ttlg {
namespace {

sim::LaunchResult synthetic_launch(double time_s, std::int64_t gld,
                                   std::int64_t gst,
                                   std::int64_t payload_bytes) {
  sim::LaunchResult res;
  res.time_s = time_s;
  res.counters.gld_transactions = gld;
  res.counters.gst_transactions = gst;
  res.counters.payload_bytes = payload_bytes;
  res.timing.occupancy = 0.5;
  return res;
}

TEST(ProfilerReport, AggregatesAcrossCalls) {
  sim::Profiler prof;
  prof.record("alpha", synthetic_launch(1e-3, 100, 100, 25600));
  prof.record("alpha", synthetic_launch(3e-3, 300, 300, 76800));
  prof.record("beta", synthetic_launch(2e-3, 50, 50, 12800));

  EXPECT_EQ(prof.distinct_kernels(), 2u);
  EXPECT_DOUBLE_EQ(prof.total_time_s(), 6e-3);
  EXPECT_EQ(prof.registry().counter_value("kernel.alpha.calls"), 2);
  EXPECT_EQ(prof.registry().counter_value("kernel.alpha.gld_transactions"),
            400);
  EXPECT_EQ(prof.registry().counter_value("kernel.beta.calls"), 1);
}

TEST(ProfilerReport, SortsByTotalTimeDescending) {
  sim::Profiler prof;
  prof.record("small", synthetic_launch(1e-4, 10, 10, 2560));
  prof.record("large", synthetic_launch(5e-3, 500, 500, 128000));
  prof.record("medium", synthetic_launch(1e-3, 100, 100, 25600));

  const std::string report = prof.report();
  const auto p_large = report.find("large");
  const auto p_medium = report.find("medium");
  const auto p_small = report.find("small");
  ASSERT_NE(p_large, std::string::npos);
  ASSERT_NE(p_medium, std::string::npos);
  ASSERT_NE(p_small, std::string::npos);
  EXPECT_LT(p_large, p_medium);
  EXPECT_LT(p_medium, p_small);
}

TEST(ProfilerReport, EmptyProfilerDoesNotDivideByZero) {
  sim::Profiler prof;
  EXPECT_EQ(prof.distinct_kernels(), 0u);
  EXPECT_DOUBLE_EQ(prof.total_time_s(), 0.0);
  const std::string report = prof.report();  // must not crash or emit nan
  EXPECT_EQ(report.find("nan"), std::string::npos);
  EXPECT_EQ(report.find("inf"), std::string::npos);
}

TEST(ProfilerReport, ZeroTimeAndZeroTrafficLaunches) {
  sim::Profiler prof;
  prof.record("noop", synthetic_launch(0.0, 0, 0, 0));
  const std::string report = prof.report();
  EXPECT_NE(report.find("noop"), std::string::npos);
  EXPECT_EQ(report.find("nan"), std::string::npos);
  EXPECT_EQ(report.find("inf"), std::string::npos);
}

TEST(ProfilerReport, ClearResetsOwnedRegistry) {
  sim::Profiler prof;
  prof.record("alpha", synthetic_launch(1e-3, 1, 1, 256));
  prof.clear();
  EXPECT_EQ(prof.distinct_kernels(), 0u);
  EXPECT_DOUBLE_EQ(prof.total_time_s(), 0.0);
  EXPECT_TRUE(prof.registry().empty());
}

TEST(ProfilerReport, ExternalRegistrySink) {
  telemetry::MetricsRegistry sink;
  sim::Profiler prof(&sink);
  prof.record("alpha", synthetic_launch(2e-3, 20, 20, 5120));
  EXPECT_EQ(sink.counter_value("kernel.alpha.calls"), 1);
  const auto j = prof.to_json();
  ASSERT_TRUE(j.contains("kernels"));
  EXPECT_TRUE(j.at("kernels").contains("alpha"));
}

}  // namespace
}  // namespace ttlg
