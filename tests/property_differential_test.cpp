// Property-based differential testing: seeded randomized problems of
// rank 2-7, mixed extents and every supported element size (1/2/4/8
// bytes), executed through the full planner and compared
// element-for-element against the host reference transposition. A
// directed case list pins every schema of the taxonomy; the randomized
// sweep must rediscover them all as well.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/ttlg.hpp"

namespace ttlg {
namespace {

template <class T>
void fill_random_elems(Rng& rng, std::vector<T>& v) {
  // Integer elements take raw random bits (every bit pattern is a valid
  // value, so mismatches cannot hide behind rounding); floating-point
  // elements take finite uniform values so == comparison is exact.
  if constexpr (std::is_integral_v<T>) {
    for (auto& x : v) x = static_cast<T>(rng());
  } else {
    for (auto& x : v)
      x = static_cast<T>(rng.uniform01() * 2048.0 - 1024.0);
  }
}

template <class T>
Schema run_differential(Rng& rng, const Shape& shape,
                        const Permutation& perm) {
  sim::Device dev;
  Tensor<T> host(shape);
  fill_random_elems(rng, host.vec());
  auto in = dev.alloc_copy<T>(host.vec());
  auto out = dev.alloc<T>(shape.volume());

  Plan plan;
  transpose<T>(dev, in, out, shape, perm, {}, &plan);
  const Tensor<T> expected = host_transpose(host, perm);
  for (Index i = 0; i < shape.volume(); ++i) {
    if (out[i] != expected.at(i)) {
      ADD_FAILURE() << shape.to_string() << perm.to_string()
                    << " elem_size " << sizeof(T) << " schema "
                    << to_string(plan.schema()) << " at " << i;
      break;
    }
  }
  return plan.schema();
}

Schema run_differential_sized(Rng& rng, const Shape& shape,
                              const Permutation& perm, int elem_size) {
  switch (elem_size) {
    case 1:
      return run_differential<std::uint8_t>(rng, shape, perm);
    case 2:
      return run_differential<std::uint16_t>(rng, shape, perm);
    case 4:
      return run_differential<float>(rng, shape, perm);
    default:
      return run_differential<double>(rng, shape, perm);
  }
}

TEST(PropertyDifferential, DirectedSchemaCoverageAtEveryElemSize) {
  // One problem per schema, run at all four element sizes.
  const std::vector<std::pair<Extents, std::vector<Index>>> cases = {
      {{64, 64}, {0, 1}},                    // Copy
      {{64, 16, 16}, {0, 2, 1}},             // FVI-Match-Large
      {{16, 8, 24}, {0, 2, 1}},              // FVI-Match-Small
      {{40, 9, 40}, {2, 1, 0}},              // Orthogonal-Distinct
      {{8, 2, 24, 24, 24}, {2, 1, 3, 0, 4}}  // Orthogonal-Arbitrary
  };
  Rng rng(101);
  std::set<Schema> seen;
  for (const auto& [ext, perm_v] : cases) {
    for (int elem_size : {1, 2, 4, 8}) {
      seen.insert(run_differential_sized(rng, Shape(ext),
                                         Permutation(perm_v), elem_size));
    }
  }
  EXPECT_EQ(seen.size(), 5u) << "directed cases must span all schemas";
}

class PropertyDifferentialRandom : public ::testing::TestWithParam<int> {};

TEST_P(PropertyDifferentialRandom, RandomizedSweep) {
  // Seeded sweep over rank 2-7 with mixed extents (biased toward
  // awkward non-powers-of-two) cycling through the element sizes.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6271 + 31);
  const int elem_sizes[] = {1, 2, 4, 8};
  for (int iter = 0; iter < 10; ++iter) {
    const Index rank = static_cast<Index>(rng.uniform(2, 7));
    Extents ext;
    Index vol = 1;
    for (Index d = 0; d < rank; ++d) {
      const Index e = static_cast<Index>(
          rng.uniform(1, 2) == 1 ? rng.uniform(1, 8) : rng.uniform(9, 41));
      ext.push_back(e);
      vol *= e;
    }
    if (vol > (1 << 19)) continue;
    std::vector<Index> perm(static_cast<std::size_t>(rank));
    std::iota(perm.begin(), perm.end(), Index{0});
    // Keep ~1 in 6 permutations identity so kCopy stays reachable.
    if (rng.uniform(1, 6) != 1) {
      for (std::size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng.uniform(0, i - 1)]);
    }
    run_differential_sized(rng, Shape(ext), Permutation(perm),
                           elem_sizes[iter % 4]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyDifferentialRandom,
                         ::testing::Range(0, 12));

TEST(PropertyDifferential, RandomSweepRediscoversEverySchema) {
  // The randomized generator itself (not just the directed list) must
  // be able to reach every schema; otherwise the sweep silently loses
  // coverage when the planner changes.
  Rng rng(424242);
  std::set<Schema> seen;
  for (int iter = 0; iter < 400 && seen.size() < 5; ++iter) {
    const Index rank = static_cast<Index>(rng.uniform(2, 7));
    Extents ext;
    Index vol = 1;
    for (Index d = 0; d < rank; ++d) {
      const Index e = static_cast<Index>(
          rng.uniform(1, 2) == 1 ? rng.uniform(1, 8) : rng.uniform(9, 41));
      ext.push_back(e);
      vol *= e;
    }
    if (vol > (1 << 17)) continue;
    std::vector<Index> perm(static_cast<std::size_t>(rank));
    std::iota(perm.begin(), perm.end(), Index{0});
    if (rng.uniform(1, 6) != 1) {
      for (std::size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng.uniform(0, i - 1)]);
    }
    seen.insert(
        classify(TransposeProblem::make(Shape(ext), Permutation(perm))));
  }
  EXPECT_EQ(seen.size(), 5u)
      << "randomized generator covers only " << seen.size() << " schemas";
}

}  // namespace
}  // namespace ttlg
