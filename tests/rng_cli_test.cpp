#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/cli.hpp"
#include "common/rng.hpp"

namespace ttlg {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42), c(43);
  bool all_equal = true, any_diff_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    all_equal &= (va == vb);
    any_diff_from_c |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_from_c);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(3, 17);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 17u);
  }
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(11);
  double min = 1, max = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    min = std::min(min, v);
    max = std::max(max, v);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  EXPECT_LT(min, 0.1);  // covers the range
  EXPECT_GT(max, 0.9);
}

TEST(Cli, ParsesFlagFormats) {
  const char* argv[] = {"prog",    "--alpha", "3",          "--beta=hi",
                        "--gamma", "--delta", "4.5",        "positional"};
  const Cli cli(8, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("beta", ""), "hi");
  EXPECT_TRUE(cli.get_bool("gamma"));
  EXPECT_DOUBLE_EQ(cli.get_double("delta", 0.0), 4.5);
  EXPECT_EQ(cli.positional(), std::vector<std::string>{"positional"});
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("missing"));
}

TEST(Cli, BooleanNegations) {
  const char* argv[] = {"prog", "--x=false", "--y=0", "--z=no", "--w=yes"};
  const Cli cli(5, argv);
  EXPECT_FALSE(cli.get_bool("x", true));
  EXPECT_FALSE(cli.get_bool("y", true));
  EXPECT_FALSE(cli.get_bool("z", true));
  EXPECT_TRUE(cli.get_bool("w", false));
}

TEST(Cli, ParseIntList) {
  EXPECT_EQ(parse_int_list("1,2,3"), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(parse_int_list("32x16x8"), (std::vector<std::int64_t>{32, 16, 8}));
  EXPECT_EQ(parse_int_list("7"), (std::vector<std::int64_t>{7}));
  EXPECT_THROW(parse_int_list(""), Error);
  EXPECT_THROW(parse_int_list("a,b"), Error);
  EXPECT_THROW(parse_int_list("1,2a"), Error);
  // 'x' is a separator, so "1,2x" parses as {1, 2}.
  EXPECT_EQ(parse_int_list("1,2x"), (std::vector<std::int64_t>{1, 2}));
}

}  // namespace
}  // namespace ttlg
