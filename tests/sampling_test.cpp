// Class-sampled counting is the benchmark harness's core speed trick;
// this suite validates its accuracy against full count-only execution
// for every kernel, on remainder-heavy shapes where block classes
// actually differ.
#include <gtest/gtest.h>

#include "core/ttlg.hpp"
#include "ttgt/gemm_kernel.hpp"

namespace ttlg {
namespace {

struct SampledVsFull {
  sim::LaunchResult full;
  sim::LaunchResult sampled;
};

SampledVsFull run_both(const Extents& ext, const std::vector<Index>& perm_v) {
  const Shape shape(ext);
  const Permutation perm(perm_v);
  sim::Device dev;
  dev.set_mode(sim::ExecMode::kCountOnly);
  auto in = dev.alloc_virtual<double>(shape.volume());
  auto out = dev.alloc_virtual<double>(shape.volume());
  Plan plan = make_plan(dev, shape, perm);
  SampledVsFull r;
  r.full = plan.execute<double>(in, out);
  dev.set_sampling(8);
  r.sampled = plan.execute<double>(in, out);
  return r;
}

void expect_close(std::int64_t a, std::int64_t b, double tol,
                  const char* what) {
  if (a == 0 && b == 0) return;
  const double rel = std::abs(static_cast<double>(a - b)) /
                     std::max<double>(1.0, static_cast<double>(b));
  EXPECT_LE(rel, tol) << what << ": sampled " << a << " vs full " << b;
}

class SamplingAccuracy
    : public ::testing::TestWithParam<
          std::pair<Extents, std::vector<Index>>> {};

TEST_P(SamplingAccuracy, CountersWithinTolerance) {
  const auto& [ext, perm] = GetParam();
  const auto r = run_both(ext, perm);
  // On big benchmark grids sampling is exact to <0.1%; these tiny
  // remainder-heavy grids are the worst case (few blocks per class,
  // per-block misalignment variance), so allow a few percent.
  expect_close(r.sampled.counters.gld_transactions,
               r.full.counters.gld_transactions, 0.05, "gld");
  expect_close(r.sampled.counters.gst_transactions,
               r.full.counters.gst_transactions, 0.05, "gst");
  expect_close(r.sampled.counters.smem_load_ops,
               r.full.counters.smem_load_ops, 0.05, "smem_ld");
  expect_close(r.sampled.counters.smem_bank_conflicts,
               r.full.counters.smem_bank_conflicts, 0.08, "conflicts");
  expect_close(r.sampled.counters.special_ops, r.full.counters.special_ops,
               0.05, "special");
  EXPECT_NEAR(r.sampled.time_s, r.full.time_s, r.full.time_s * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    RemainderShapes, SamplingAccuracy,
    ::testing::Values(
        // OD with remainders on both chunked dims.
        std::pair<Extents, std::vector<Index>>{{70, 10, 50}, {2, 1, 0}},
        // OA with coarsening and partial chunks.
        std::pair<Extents, std::vector<Index>>{{9, 7, 8, 33, 11},
                                               {3, 1, 4, 0, 2}},
        // FVI-Match-Small with remainder chunks.
        std::pair<Extents, std::vector<Index>>{{16, 11, 9, 5}, {0, 2, 1, 3}},
        // FVI-Match-Large with row batching remainder.
        std::pair<Extents, std::vector<Index>>{{64, 13, 31, 9},
                                               {0, 3, 2, 1}},
        // Odd-sized 6D (the Fig. 8 regime).
        std::pair<Extents, std::vector<Index>>{{15, 15, 15, 15, 15},
                                               {4, 1, 2, 0, 3}}));

TEST(SamplingAccuracy, GemmKernelClasses) {
  // Remainder tiles on both m and n.
  const Index m = 40, n = 24, k = 56;
  sim::Device dev;
  dev.set_mode(sim::ExecMode::kCountOnly);
  auto a = dev.alloc_virtual<double>(m * k);
  auto b = dev.alloc_virtual<double>(k * n);
  auto c = dev.alloc_virtual<double>(m * n);
  const auto cfg = ttgt::GemmConfig::make(m, n, k);
  const auto full = ttgt::launch_gemm<double>(dev, cfg, a, b, c);
  dev.set_sampling(4);
  const auto sampled = ttgt::launch_gemm<double>(dev, cfg, a, b, c);
  EXPECT_EQ(sampled.counters.fma_ops, full.counters.fma_ops);
  EXPECT_EQ(sampled.counters.gld_transactions,
            full.counters.gld_transactions);
  EXPECT_NEAR(sampled.time_s, full.time_s, full.time_s * 1e-9);
}

TEST(SamplingAccuracy, SamplingIgnoredInFunctionalMode) {
  // Functional correctness must never be sacrificed: sampling is only
  // honoured in count-only mode.
  const Shape shape({40, 30});
  const Permutation perm({1, 0});
  sim::Device dev;
  dev.set_sampling(2);  // set, but mode stays functional
  Tensor<double> host(shape);
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out = dev.alloc<double>(shape.volume());
  Plan plan = make_plan(dev, shape, perm);
  plan.execute<double>(in, out);
  const Tensor<double> expected = host_transpose(host, perm);
  for (Index i = 0; i < shape.volume(); ++i) ASSERT_EQ(out[i], expected.at(i));
}

}  // namespace
}  // namespace ttlg
