// Unit and edge-case battery for the overload-hardened transpose
// service: admission control, per-tenant quotas, deadline propagation,
// deterministic backoff, and the bounded-queue / token-bucket /
// backoff primitives in isolation (all on the seeded ManualClock, so
// every rejection and refill is exactly reproducible).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "gpusim/fault_injector.hpp"
#include "service/backoff.hpp"
#include "service/bounded_queue.hpp"
#include "service/loadgen.hpp"
#include "service/quota.hpp"
#include "service/server.hpp"
#include "shard/fleet.hpp"
#include "tensor/host_transpose.hpp"
#include "tensor/tensor.hpp"

namespace ttlg::service {
namespace {

Request make_request(const Shape& shape, const Permutation& perm,
                     std::shared_ptr<const std::vector<double>> input,
                     const std::string& tenant = "t0") {
  Request req;
  req.tenant = tenant;
  req.shape = shape;
  req.perm = perm;
  req.input = std::move(input);
  return req;
}

struct Fixture {
  Shape shape{Extents{16, 8, 4}};
  Permutation perm{std::vector<Index>{2, 0, 1}};
  std::shared_ptr<std::vector<double>> input;
  std::vector<double> expected;

  Fixture() {
    input = std::make_shared<std::vector<double>>(
        static_cast<std::size_t>(shape.volume()));
    for (std::size_t i = 0; i < input->size(); ++i)
      (*input)[i] = static_cast<double>(i) * 0.25;
    expected.resize(input->size());
    host_transpose(std::span<const double>(*input),
                   std::span<double>(expected), shape, perm);
  }

  Request request(const std::string& tenant = "t0") const {
    return make_request(shape, perm, input, tenant);
  }
};

// ---------------------------------------------------------------- backoff

TEST(Backoff, ReproducibleForFixedSeed) {
  BackoffPolicy policy;
  policy.base_us = 100;
  policy.cap_us = 10000;
  policy.seed = 7;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const auto a = backoff_us(policy, 42, attempt);
    const auto b = backoff_us(policy, 42, attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;
  }
}

TEST(Backoff, SlotGrowsExponentiallyAndSaturates) {
  BackoffPolicy policy;
  policy.base_us = 100;
  policy.cap_us = 1000;
  policy.seed = 3;
  // Slot for attempt k is base * 2^(k-1) clamped at cap; jitter adds at
  // most half a slot. Check the envelope, not the jitter draw.
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const std::int64_t slot =
        std::min<std::int64_t>(100LL << (attempt - 1), 1000);
    const auto wait = backoff_us(policy, 9, attempt);
    EXPECT_GE(wait, slot);
    EXPECT_LE(wait, slot + slot / 2);
  }
  // Huge attempt numbers must not overflow past the cap.
  const auto wait = backoff_us(policy, 9, 100);
  EXPECT_GE(wait, 1000);
  EXPECT_LE(wait, 1500);
}

TEST(Backoff, JitterDecorrelatesRequests) {
  BackoffPolicy policy;
  policy.base_us = 1000;
  policy.cap_us = 100000;
  policy.seed = 5;
  // Different request ids should (overwhelmingly) draw different
  // jitter; equal draws for all five ids would mean no decorrelation.
  bool any_different = false;
  const auto first = backoff_us(policy, 0, 4);
  for (std::uint64_t id = 1; id < 5; ++id)
    any_different = any_different || backoff_us(policy, id, 4) != first;
  EXPECT_TRUE(any_different);
}

// ----------------------------------------------------------- bounded queue

TEST(BoundedQueue, ZeroCapacityAdmitsNothing) {
  BoundedQueue q(0);
  Request r;
  EXPECT_FALSE(q.try_push(r));
  EXPECT_EQ(q.size(), 0u);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, ShedsAtCapacityAndDrainsInPriorityOrder) {
  BoundedQueue q(3);
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.id = static_cast<std::uint64_t>(i + 1);
    // ids 1,2,3 with priorities batch, normal, high.
    r.priority = static_cast<Priority>(2 - i);
    EXPECT_TRUE(q.try_push(r));
  }
  Request overflow;
  EXPECT_FALSE(q.try_push(overflow)) << "4th push must shed";
  q.close();
  // Drain order: high (id 3), normal (id 2), batch (id 1).
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.try_push(overflow)) << "closed queue admits nothing";
}

// ----------------------------------------------------------- token bucket

TEST(TokenBucket, DeterministicRefillUnderSeededClock) {
  ManualClock clock(0);
  // 10 tokens/s, burst 2: starts full, refills one token per 100ms.
  TokenBucket bucket(10.0, 2.0, clock.now_us());
  EXPECT_TRUE(bucket.try_acquire(clock.now_us()));
  EXPECT_TRUE(bucket.try_acquire(clock.now_us()));
  EXPECT_FALSE(bucket.try_acquire(clock.now_us())) << "burst exhausted";
  clock.advance_us(50000);  // +0.5 tokens: still short of 1
  EXPECT_FALSE(bucket.try_acquire(clock.now_us()));
  clock.advance_us(50000);  // exactly 1 token
  EXPECT_TRUE(bucket.try_acquire(clock.now_us()));
  EXPECT_FALSE(bucket.try_acquire(clock.now_us()));
  clock.advance_us(10000000);  // 100 tokens earned, clamped at burst 2
  EXPECT_TRUE(bucket.try_acquire(clock.now_us()));
  EXPECT_TRUE(bucket.try_acquire(clock.now_us()));
  EXPECT_FALSE(bucket.try_acquire(clock.now_us()));
}

TEST(QuotaManager, IsolatesTenants) {
  ManualClock clock(0);
  QuotaConfig cfg;
  cfg.rate_per_s = 1;
  cfg.burst = 1;
  QuotaManager quota(cfg, clock);
  EXPECT_TRUE(quota.admit("alice"));
  EXPECT_FALSE(quota.admit("alice")) << "alice's bucket is empty";
  EXPECT_TRUE(quota.admit("bob")) << "bob has his own bucket";
  clock.advance_us(1000000);
  EXPECT_TRUE(quota.admit("alice"));
}

TEST(QuotaManager, UnlimitedWhenRateIsZero) {
  ManualClock clock(0);
  QuotaManager quota(QuotaConfig{}, clock);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(quota.admit("anyone"));
}

// ----------------------------------------------------------------- server

TEST(Server, ServesAndVerifiesBitIdenticalOutput) {
  Fixture fx;
  sim::Device dev;
  dev.set_num_threads(1);
  ServerConfig cfg;
  cfg.workers = 2;
  Server server(dev, cfg);
  server.start();
  auto fut = server.submit(fx.request());
  const Response res = fut.get();
  server.stop();
  EXPECT_EQ(res.outcome, Outcome::kServed);
  EXPECT_TRUE(res.status.is_ok());
  EXPECT_EQ(res.output, fx.expected);
  EXPECT_GE(res.attempts, 1);
  const auto counts = server.counts();
  EXPECT_EQ(counts.served, 1);
  EXPECT_EQ(counts.terminal(), counts.submitted);
}

TEST(Server, RoutesLargeRequestsThroughTheFleet) {
  // With a fleet configured, requests at or above shard_min_volume go
  // through the sharded executor (and say so in the response); smaller
  // ones stay on the serving device. Outputs match either way.
  Fixture fx;
  sim::Device dev;
  shard::Fleet fleet = shard::Fleet::homogeneous(3);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.fleet = &fleet;
  cfg.shard_min_volume = fx.shape.volume();  // fixture exactly qualifies
  Server server(dev, cfg);
  server.start();
  const Response big = server.submit(fx.request()).get();
  Request small_req = fx.request();
  small_req.shape = Shape(Extents{4, 4});
  small_req.perm = Permutation(std::vector<Index>{1, 0});
  small_req.input = std::make_shared<std::vector<double>>(16, 1.5);
  const Response small = server.submit(small_req).get();
  server.stop();
  EXPECT_EQ(big.outcome, Outcome::kServed);
  EXPECT_TRUE(big.sharded);
  EXPECT_EQ(big.output, fx.expected);
  EXPECT_EQ(small.outcome, Outcome::kServed);
  EXPECT_FALSE(small.sharded);
}

TEST(Server, AlreadyExpiredDeadlineRejectedWithoutTouchingPlanner) {
  Fixture fx;
  sim::Device dev;
  ManualClock clock(1000);
  ServerConfig cfg;
  cfg.clock = &clock;
  Server server(dev, cfg);  // deliberately NOT started
  Request req = fx.request();
  req.deadline_us = 500;  // already in the past
  const Response res = server.submit(req).get();
  EXPECT_EQ(res.outcome, Outcome::kExpired);
  EXPECT_EQ(res.status.code(), ErrorCode::kDeadlineExceeded);
  const auto counts = server.counts();
  EXPECT_EQ(counts.expired_admission, 1);
  EXPECT_EQ(counts.admitted, 0);
  // The planner was never consulted: no cache traffic at all.
  const auto cache = server.cache().stats();
  EXPECT_EQ(cache.hits + cache.misses + cache.failures, 0);
  server.stop();
}

TEST(Server, QuotaRejectionIsRetryableUnavailable) {
  Fixture fx;
  sim::Device dev;
  ManualClock clock(0);
  ServerConfig cfg;
  cfg.clock = &clock;
  cfg.quota.rate_per_s = 1;
  cfg.quota.burst = 2;
  Server server(dev, cfg);  // not started: admission only
  EXPECT_EQ(server.submit(fx.request("a")).wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);  // admitted, queued
  server.submit(fx.request("a"));          // second token
  const Response shed = server.submit(fx.request("a")).get();
  EXPECT_EQ(shed.outcome, Outcome::kShedQuota);
  EXPECT_EQ(shed.status.code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(retryable(shed.status.code()))
      << "quota rejections must invite client backoff-and-retry";
  // Another tenant is unaffected.
  EXPECT_EQ(server.submit(fx.request("b")).wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_EQ(server.counts().shed_quota, 1);
  server.stop();  // drains the three admitted requests
}

TEST(Server, FullQueueShedsWithClassifiedStatus) {
  Fixture fx;
  sim::Device dev;
  ServerConfig cfg;
  cfg.queue_capacity = 2;
  Server server(dev, cfg);  // not started: the queue only fills
  server.submit(fx.request());
  server.submit(fx.request());
  const Response shed = server.submit(fx.request()).get();
  EXPECT_EQ(shed.outcome, Outcome::kShedQueueFull);
  EXPECT_EQ(shed.status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(server.counts().shed_queue_full, 1);
  server.stop();
}

TEST(Server, ZeroCapacityQueueShedsEverything) {
  Fixture fx;
  sim::Device dev;
  ServerConfig cfg;
  cfg.queue_capacity = 0;
  Server server(dev, cfg);
  server.start();
  for (int i = 0; i < 5; ++i) {
    const Response res = server.submit(fx.request()).get();
    EXPECT_EQ(res.outcome, Outcome::kShedQueueFull);
  }
  server.stop();
  EXPECT_EQ(server.counts().shed_queue_full, 5);
  EXPECT_EQ(server.counts().admitted, 0);
}

TEST(Server, DeadlineExpiredInQueueClassifiedAtDequeue) {
  Fixture fx;
  sim::Device dev;
  ManualClock clock(0);
  ServerConfig cfg;
  cfg.clock = &clock;
  Server server(dev, cfg);  // not started yet
  Request req = fx.request();
  req.deadline_us = 1000;
  auto fut = server.submit(req);  // admitted with headroom
  clock.advance_us(2000);         // ...which then expires in the queue
  server.stop();                  // drains: dequeue-time check fires
  const Response res = fut.get();
  EXPECT_EQ(res.outcome, Outcome::kExpired);
  EXPECT_EQ(res.status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(server.counts().expired_queue, 1);
}

TEST(Server, StopResolvesEveryAdmittedFuture) {
  Fixture fx;
  sim::Device dev;
  ServerConfig cfg;
  cfg.workers = 2;
  Server server(dev, cfg);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 20; ++i) futures.push_back(server.submit(fx.request()));
  server.start();
  server.stop();
  std::int64_t served = 0;
  for (auto& f : futures) {
    const Response res = f.get();  // must not hang
    if (res.outcome == Outcome::kServed) {
      ++served;
      EXPECT_EQ(res.output, fx.expected);
    }
  }
  EXPECT_EQ(served, server.counts().served);
  EXPECT_EQ(server.counts().terminal(), server.counts().submitted);
}

TEST(Server, RetriesFaultsWithDeterministicBackoffOnManualClock) {
  Fixture fx;
  sim::Device dev;
  ManualClock clock(0);
  ServerConfig cfg;
  cfg.clock = &clock;
  cfg.workers = 1;
  cfg.backoff.max_retries = 3;
  // The ladder is disabled so injected launch faults surface to the
  // service retry loop (which replans and relaunches).
  cfg.plan.enable_fallback = false;
  Server server(dev, cfg);
  sim::ScopedFaults faults("seed=5,launch.p=0.45");
  server.start();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(fx.request()));
  server.stop();
  std::int64_t served = 0, failed = 0;
  for (auto& f : futures) {
    const Response res = f.get();
    if (res.served()) {
      ++served;
      EXPECT_EQ(res.output, fx.expected) << "served must be bit-identical";
    } else {
      ++failed;
      EXPECT_EQ(res.outcome, Outcome::kFailed);
      EXPECT_FALSE(res.status.is_ok());
    }
  }
  const auto counts = server.counts();
  EXPECT_EQ(counts.terminal(), counts.submitted);
  EXPECT_EQ(served, counts.served);
  EXPECT_EQ(failed, counts.failed);
  // The fault spec guarantees some launches failed; with retries armed
  // at least one request must have gone around the loop (and the
  // ManualClock means the backoff consumed simulated, not wall, time).
  EXPECT_GT(counts.retries, 0);
}

TEST(Server, LoadgenRunsCleanWithoutFaults) {
  sim::Device dev;
  dev.set_num_threads(1);
  ServerConfig cfg;
  cfg.workers = 3;
  Server server(dev, cfg);
  server.start();
  LoadgenConfig lcfg;
  lcfg.requests = 60;
  lcfg.clients = 3;
  lcfg.tenants = 3;
  lcfg.distinct_shapes = 4;
  lcfg.max_extent = 8;
  const auto report = run_load(server, lcfg);
  server.stop();
  EXPECT_EQ(report.completed, lcfg.requests);
  EXPECT_EQ(report.served, lcfg.requests);
  EXPECT_EQ(report.mismatches, 0);
  EXPECT_EQ(report.failed, 0);
  // Plan-cache reuse: 4 distinct shapes, 60 requests. A coalesced
  // group resolves its shared plan ONCE for the whole fused launch, so
  // count cache traffic (not served requests): the planner itself must
  // have run at most ~once per distinct shape (x2 slack for workers
  // racing a cold cache).
  const auto cache = server.cache().stats();
  const auto counts = server.counts();
  EXPECT_LE(cache.misses, 2 * lcfg.distinct_shapes);
  EXPECT_GE(cache.hits + counts.coalesced_members - counts.coalesced_launches,
            report.served - 2 * lcfg.distinct_shapes);
}

}  // namespace
}  // namespace ttlg::service
