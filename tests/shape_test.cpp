#include <gtest/gtest.h>

#include "common/error.hpp"

#include "tensor/shape.hpp"

namespace ttlg {
namespace {

TEST(Shape, StridesAreFastestFirst) {
  const Shape s({4, 5, 6});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.volume(), 120);
  EXPECT_EQ(s.stride(0), 1);
  EXPECT_EQ(s.stride(1), 4);
  EXPECT_EQ(s.stride(2), 20);
}

TEST(Shape, LinearizeMatchesManualFormula) {
  const Shape s({3, 4, 5});
  EXPECT_EQ(s.linearize({0, 0, 0}), 0);
  EXPECT_EQ(s.linearize({2, 0, 0}), 2);
  EXPECT_EQ(s.linearize({0, 1, 0}), 3);
  EXPECT_EQ(s.linearize({0, 0, 1}), 12);
  EXPECT_EQ(s.linearize({2, 3, 4}), 2 + 3 * 3 + 4 * 12);
}

TEST(Shape, DelinearizeRoundTripsEveryOffset) {
  const Shape s({3, 1, 4, 2});
  for (Index off = 0; off < s.volume(); ++off) {
    EXPECT_EQ(s.linearize(s.delinearize(off)), off);
  }
}

TEST(Shape, RejectsNonPositiveExtents) {
  EXPECT_THROW((Shape({4, 0, 2})), Error);
  EXPECT_THROW((Shape({-3})), Error);
}

TEST(Shape, RejectsOutOfRangeAccess) {
  const Shape s({2, 2});
  EXPECT_THROW(s.extent(2), Error);
  EXPECT_THROW(s.stride(-1), Error);
  EXPECT_THROW((s.linearize({0, 2})), Error);
  EXPECT_THROW((s.linearize({0})), Error);
  EXPECT_THROW(s.delinearize(4), Error);
}

TEST(Shape, SizeOneDimensionsBehave) {
  const Shape s({1, 7, 1});
  EXPECT_EQ(s.volume(), 7);
  EXPECT_EQ(s.stride(2), 7);
  EXPECT_EQ(s.delinearize(6), (Extents{0, 6, 0}));
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
}

TEST(Shape, RankZeroHasVolumeOne) {
  const Shape s(Extents{});
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.volume(), 1);
}

}  // namespace
}  // namespace ttlg
