// Differential battery for multi-device sharded execution: randomized
// (shape, permutation, element size, shard count) tuples where the
// sharded run's output must be BYTE-IDENTICAL to both the
// single-device planned execution and the host reference transpose —
// at every shard count, under host-thread-count variation, for both
// shard policies, on homogeneous and heterogeneous fleets, and with
// non-trivial epilogues.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/ttlg.hpp"
#include "shard/sharded_executor.hpp"

namespace ttlg::shard {
namespace {

template <class T>
void fill_random_elems(Rng& rng, std::vector<T>& v) {
  // Integer elements take raw random bits (mismatches cannot hide
  // behind rounding); floating-point elements take finite uniform
  // values so == / memcmp comparison is exact.
  if constexpr (std::is_integral_v<T>) {
    for (auto& x : v) x = static_cast<T>(rng());
  } else {
    for (auto& x : v) x = static_cast<T>(rng.uniform01() * 2048.0 - 1024.0);
  }
}

std::vector<Index> random_perm(Rng& rng, Index rank) {
  std::vector<Index> p(static_cast<std::size_t>(rank));
  for (Index i = 0; i < rank; ++i) p[static_cast<std::size_t>(i)] = i;
  for (Index i = rank - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::uint64_t>(i)));
    std::swap(p[static_cast<std::size_t>(i)], p[j]);
  }
  return p;
}

struct CaseConfig {
  int num_shards = 1;
  ShardPolicy policy = ShardPolicy::kUniform;
  int fleet_threads = 0;  ///< 0 = leave device default
  bool heterogeneous = false;
  double alpha = 1.0, beta = 0.0;
};

/// Run one case through (a) a fresh single device, (b) the sharded
/// executor, and (c) host_transpose; all three must agree exactly.
/// Returns the schema the sharded run selected.
template <class T>
Schema run_case(std::uint64_t seed, const Shape& shape,
                const Permutation& perm, const CaseConfig& cfg) {
  Rng rng(seed);
  const Index volume = shape.volume();
  Tensor<T> host(shape);
  fill_random_elems(rng, host.vec());
  std::vector<T> prev(static_cast<std::size_t>(volume));
  fill_random_elems(rng, prev);
  const T alpha = static_cast<T>(cfg.alpha);
  const T beta = static_cast<T>(cfg.beta);

  // (a) Single-device reference execution with the same epilogue.
  sim::Device ref;
  auto ref_in = ref.alloc_copy<T>(host.vec());
  auto ref_out =
      ref.alloc_copy<T>(std::span<const T>(prev.data(), prev.size()));
  PlanOptions popts;
  popts.elem_size = static_cast<int>(sizeof(T));
  Plan ref_plan = make_plan(ref, shape, perm, popts);
  ref_plan.execute<T>(ref_in, ref_out, alpha, beta);

  // (b) Sharded execution.
  std::vector<sim::DeviceProperties> descriptors;
  for (int i = 0; i < cfg.num_shards; ++i) {
    descriptors.push_back(cfg.heterogeneous && i % 2 == 1
                              ? sim::DeviceProperties::volta_v100()
                              : sim::DeviceProperties::tesla_k40c());
  }
  Fleet fleet(descriptors);
  if (cfg.fleet_threads > 0) fleet.set_num_threads(cfg.fleet_threads);
  ShardOptions sopts;
  sopts.num_shards = cfg.num_shards;
  sopts.policy = cfg.policy;
  ShardedExecutor ex(fleet, sopts);
  std::vector<T> out = prev;
  auto res = ex.run<T>(shape, perm,
                       std::span<const T>(host.vec().data(),
                                          host.vec().size()),
                       std::span<T>(out.data(), out.size()), alpha, beta);
  EXPECT_TRUE(res.has_value()) << res.status().message();
  if (!res.has_value()) return Schema::kCopy;
  EXPECT_LE(static_cast<int>(res->shards.size()), cfg.num_shards);
  EXPECT_GE(res->shards.size(), 1u);

  // Sharded == single-device, byte for byte.
  EXPECT_EQ(0, std::memcmp(out.data(), ref_out.data(),
                           static_cast<std::size_t>(volume) * sizeof(T)))
      << shape.to_string() << perm.to_string() << " elem " << sizeof(T)
      << " shards " << cfg.num_shards << " policy "
      << to_string(cfg.policy);

  // Sharded == host reference (plain transpose cases only; epilogue
  // correctness is pinned by the single-device comparison above).
  if (alpha == T{1} && beta == T{0}) {
    const Tensor<T> expected = host_transpose(host, perm);
    EXPECT_EQ(0, std::memcmp(out.data(), expected.data(),
                             static_cast<std::size_t>(volume) * sizeof(T)))
        << shape.to_string() << perm.to_string() << " vs host reference";
  }
  return res->schema;
}

Schema run_case_sized(std::uint64_t seed, const Shape& shape,
                      const Permutation& perm, int elem_size,
                      const CaseConfig& cfg) {
  switch (elem_size) {
    case 1:
      return run_case<std::uint8_t>(seed, shape, perm, cfg);
    case 2:
      return run_case<std::uint16_t>(seed, shape, perm, cfg);
    case 4:
      return run_case<float>(seed, shape, perm, cfg);
    default:
      return run_case<double>(seed, shape, perm, cfg);
  }
}

// The directed per-schema problems from the single-device differential
// battery (one per taxonomy schema).
const std::vector<std::pair<Extents, std::vector<Index>>>& schema_cases() {
  static const std::vector<std::pair<Extents, std::vector<Index>>> cases = {
      {{64, 64}, {0, 1}},                    // Copy
      {{64, 16, 16}, {0, 2, 1}},             // FVI-Match-Large
      {{16, 8, 24}, {0, 2, 1}},              // FVI-Match-Small
      {{40, 9, 40}, {2, 1, 0}},              // Orthogonal-Distinct
      {{8, 2, 24, 24, 24}, {2, 1, 3, 0, 4}}  // Orthogonal-Arbitrary
  };
  return cases;
}

TEST(ShardDifferential, DirectedSchemaCoverageAtEveryShardCount) {
  std::set<Schema> seen;
  std::uint64_t seed = 1;
  for (const auto& [ext, perm_v] : schema_cases()) {
    for (int n : {1, 2, 3, 4, 7}) {
      CaseConfig cfg;
      cfg.num_shards = n;
      seen.insert(run_case_sized(seed++, Shape(ext), Permutation(perm_v), 8,
                                 cfg));
    }
  }
  EXPECT_EQ(seen.size(), 5u) << "directed cases must span all schemas";
}

TEST(ShardDifferential, RandomizedSweep) {
  // ~200 randomized (shape, permutation, elem_size, shard count)
  // tuples: rank 2-5, extents 1-9 (volume-capped), all four element
  // sizes, shard counts including a prime that rarely divides the
  // split extent evenly.
  Rng rng(20260807);
  const int shard_counts[] = {1, 2, 3, 4, 7};
  const int elem_sizes[] = {1, 2, 4, 8};
  int cases = 0;
  for (int iter = 0; cases < 200; ++iter) {
    ASSERT_LT(iter, 4000) << "sweep failed to generate enough cases";
    const Index rank = static_cast<Index>(rng.uniform(2, 5));
    Extents ext(static_cast<std::size_t>(rank));
    Index volume = 1;
    for (auto& e : ext) {
      e = static_cast<Index>(rng.uniform(1, 9));
      volume *= e;
    }
    if (volume > 40000) continue;
    const Shape shape(ext);
    const Permutation perm(random_perm(rng, rank));
    CaseConfig cfg;
    cfg.num_shards = shard_counts[rng.uniform(0, 4)];
    run_case_sized(rng(), shape, perm, elem_sizes[rng.uniform(0, 3)], cfg);
    ++cases;
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(ShardDifferential, HostThreadCountDoesNotChangeOutput) {
  // The fleet-wide TTLG_THREADS analog: per-device host parallelism
  // must not perturb sharded results (the engine's bit-identical
  // parallel execution guarantee extended across devices).
  std::uint64_t seed = 77;
  for (const auto& [ext, perm_v] : schema_cases()) {
    for (int threads : {1, 3}) {
      CaseConfig cfg;
      cfg.num_shards = 3;
      cfg.fleet_threads = threads;
      run_case_sized(seed, Shape(ext), Permutation(perm_v), 4, cfg);
    }
    ++seed;
  }
}

TEST(ShardDifferential, PerDevicePolicyMatchesOnHeterogeneousFleet) {
  // 2x K40c + 2x V100: per-device re-planning may pick different
  // kernels per slab, but the merged bytes must still match exactly.
  std::uint64_t seed = 301;
  for (const auto& [ext, perm_v] : schema_cases()) {
    CaseConfig cfg;
    cfg.num_shards = 4;
    cfg.policy = ShardPolicy::kPerDevice;
    cfg.heterogeneous = true;
    run_case_sized(seed++, Shape(ext), Permutation(perm_v), 8, cfg);
  }
}

TEST(ShardDifferential, UniformPolicyOnHeterogeneousFleet) {
  // The pinned-selection policy must also hold on a mixed fleet (the
  // selection comes from the reference device; outputs are
  // device-independent).
  std::uint64_t seed = 401;
  for (const auto& [ext, perm_v] : schema_cases()) {
    CaseConfig cfg;
    cfg.num_shards = 4;
    cfg.heterogeneous = true;
    run_case_sized(seed++, Shape(ext), Permutation(perm_v), 4, cfg);
  }
}

TEST(ShardDifferential, EpilogueAlphaBeta) {
  std::uint64_t seed = 501;
  for (const auto& [ext, perm_v] : schema_cases()) {
    for (ShardPolicy policy :
         {ShardPolicy::kUniform, ShardPolicy::kPerDevice}) {
      CaseConfig cfg;
      cfg.num_shards = 3;
      cfg.policy = policy;
      cfg.alpha = 2.0;
      cfg.beta = -0.5;
      run_case_sized(seed, Shape(ext), Permutation(perm_v), 8, cfg);
      run_case_sized(seed, Shape(ext), Permutation(perm_v), 4, cfg);
      ++seed;
    }
  }
}

TEST(ShardDifferential, MoreShardsThanAxisRunsDegraded) {
  // A shape whose split axis is tiny: requesting 7 shards must clamp,
  // not break.
  CaseConfig cfg;
  cfg.num_shards = 7;
  run_case<double>(601, Shape({64, 64, 2}), Permutation({2, 1, 0}), cfg);
  run_case<double>(602, Shape({1, 1, 5}), Permutation({2, 0, 1}), cfg);
  run_case<double>(603, Shape({1, 1, 1}), Permutation({0, 2, 1}), cfg);
}

}  // namespace
}  // namespace ttlg::shard
