// Fault injection against the sharded executor: with TTLG_FAULTS-style
// specs armed, a sharded run must either (a) fail over the faulted
// shard batch to a healthy device and return a degraded-but-correct
// result, or (b) surface a classified Expected error with a
// flight-recorder post-mortem — and in NO case leave a partially
// written output buffer.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "common/rng.hpp"
#include "core/ttlg.hpp"
#include "gpusim/fault_injector.hpp"
#include "shard/sharded_executor.hpp"
#include "telemetry/flight_recorder.hpp"

namespace ttlg::shard {
namespace {

namespace fs = std::filesystem;

const Shape kShape({40, 9, 40});
const Permutation kPerm({2, 1, 0});

struct Buffers {
  std::vector<double> in, out, sentinel, expected;
};

Buffers make_buffers() {
  Buffers b;
  Rng rng(99);
  Tensor<double> host(kShape);
  for (auto& x : host.vec()) x = rng.uniform01();
  b.in = host.vec();
  b.sentinel.assign(static_cast<std::size_t>(kShape.volume()), -777.25);
  b.out = b.sentinel;
  b.expected = host_transpose(host, kPerm).vec();
  return b;
}

Expected<ShardedResult> run_sharded(Fleet& fleet, ShardOptions sopts,
                                    Buffers& b) {
  ShardedExecutor ex(fleet, sopts);
  return ex.run<double>(kShape, kPerm,
                        std::span<const double>(b.in.data(), b.in.size()),
                        std::span<double>(b.out.data(), b.out.size()));
}

TEST(ShardFault, TransientLaunchFaultFailsOverAndStaysCorrect) {
  Buffers b = make_buffers();
  Fleet fleet = Fleet::homogeneous(3);
  auto& reg = telemetry::MetricsRegistry::global();
  const auto failovers_before = reg.counter_value("shard.failovers");

  Expected<ShardedResult> res = [&] {
    // One launch fault in the whole process: exactly one shard batch
    // fails, and the failover round must re-run it elsewhere.
    sim::ScopedFaults faults("seed=3,launch.nth=1");
    return run_sharded(fleet, ShardOptions{.num_shards = 3}, b);
  }();

  ASSERT_TRUE(res.has_value()) << res.status().message();
  EXPECT_EQ(0, std::memcmp(b.out.data(), b.expected.data(),
                           b.out.size() * sizeof(double)));
  int failed_over = 0;
  for (const auto& s : res->shards) failed_over += s.failed_over ? 1 : 0;
  EXPECT_GE(failed_over, 1);
  EXPECT_FALSE(res->counters_exact)
      << "failover forfeits the exact-counters guarantee";
  EXPECT_EQ(reg.counter_value("shard.failovers"), failovers_before + 1);
}

TEST(ShardFault, PersistentLaunchFaultFailsClassifiedWithPostMortem) {
  Buffers b = make_buffers();
  Fleet fleet = Fleet::homogeneous(2);
  auto& fr = telemetry::FlightRecorder::global();
  const bool was_on = telemetry::recorder_enabled();
  fr.set_enabled(true);
  const fs::path dir =
      fs::temp_directory_path() / "ttlg_shard_fault_dumps";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fr.set_dump_dir(dir.string());
  const std::int64_t dumps_before = fr.dumps();
  auto& reg = telemetry::MetricsRegistry::global();
  const auto failures_before = reg.counter_value("shard.failures");

  Expected<ShardedResult> res = [&] {
    sim::ScopedFaults faults("launch.every=1");  // no device can launch
    return run_sharded(fleet, ShardOptions{.num_shards = 2}, b);
  }();
  fr.set_dump_dir("");
  fr.set_enabled(was_on);

  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.status().code(), ErrorCode::kFaultInjected);
  // Classified failure, post-mortem on disk, output buffer untouched.
  EXPECT_GT(fr.dumps(), dumps_before);
  EXPECT_FALSE(fs::is_empty(dir));
  EXPECT_GE(reg.counter_value("shard.failures"), failures_before + 1);
  EXPECT_EQ(0, std::memcmp(b.out.data(), b.sentinel.data(),
                           b.out.size() * sizeof(double)))
      << "failed sharded run must not write the output buffer";
  fs::remove_all(dir);
}

TEST(ShardFault, FailoverDisabledSurfacesTransientFaults) {
  Buffers b = make_buffers();
  Fleet fleet = Fleet::homogeneous(3);
  Expected<ShardedResult> res = [&] {
    sim::ScopedFaults faults("seed=3,launch.nth=1");
    ShardOptions sopts;
    sopts.num_shards = 3;
    sopts.failover = false;
    return run_sharded(fleet, sopts, b);
  }();
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.status().code(), ErrorCode::kFaultInjected);
  EXPECT_EQ(0, std::memcmp(b.out.data(), b.sentinel.data(),
                           b.out.size() * sizeof(double)))
      << "failed sharded run must not write the output buffer";
}

TEST(ShardFault, SingleDeviceFleetCannotFailOver) {
  Buffers b = make_buffers();
  Fleet fleet = Fleet::homogeneous(1);
  Expected<ShardedResult> res = [&] {
    sim::ScopedFaults faults("seed=5,launch.nth=1");
    return run_sharded(fleet, ShardOptions{.num_shards = 1}, b);
  }();
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.status().code(), ErrorCode::kFaultInjected);
  EXPECT_EQ(0, std::memcmp(b.out.data(), b.sentinel.data(),
                           b.out.size() * sizeof(double)));
}

TEST(ShardFault, PerDevicePolicyLadderAbsorbsTransientFault) {
  // Under the per-device policy each slab runs through Plan::execute,
  // whose degradation ladder retries transient launch faults itself —
  // the run must succeed without even needing shard failover.
  Buffers b = make_buffers();
  Fleet fleet = Fleet::homogeneous(3);
  Expected<ShardedResult> res = [&] {
    sim::ScopedFaults faults("seed=7,launch.nth=1");
    ShardOptions sopts;
    sopts.num_shards = 3;
    sopts.policy = ShardPolicy::kPerDevice;
    return run_sharded(fleet, sopts, b);
  }();
  ASSERT_TRUE(res.has_value()) << res.status().message();
  EXPECT_EQ(0, std::memcmp(b.out.data(), b.expected.data(),
                           b.out.size() * sizeof(double)));
}

TEST(ShardFault, AllocFaultDuringMirroringIsClassified) {
  Buffers b = make_buffers();
  Fleet fleet = Fleet::homogeneous(2);
  Expected<ShardedResult> res = [&] {
    sim::ScopedFaults faults("alloc.every=1");  // no mirror can be staged
    return run_sharded(fleet, ShardOptions{.num_shards = 2}, b);
  }();
  ASSERT_FALSE(res.has_value());
  // Alloc-site faults surface with device-OOM semantics.
  EXPECT_EQ(res.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(0, std::memcmp(b.out.data(), b.sentinel.data(),
                           b.out.size() * sizeof(double)));
}

}  // namespace
}  // namespace ttlg::shard
