// Property tests for the sharded executor's two structural invariants:
//
//  1. Counter additivity — the shard-order fold of the per-shard
//     LaunchCounters (ShardCounters::total, via operator+=, which sums
//     every additive field including grid_blocks) equals the counters
//     of the SAME problem executed unsharded on a fresh reference
//     device, exactly, for every schema and shard count.
//
//  2. Exact partition — the shard ranges tile both the block-id space
//     and the split dimension with no gap and no overlap, including
//     prime extents and size-1 extents, and the per-shard output
//     region runs cover every element of the tensor exactly once.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/ttlg.hpp"
#include "shard/sharded_executor.hpp"

namespace ttlg::shard {
namespace {

// One directed problem per taxonomy schema.
const std::vector<std::pair<Extents, std::vector<Index>>>& schema_cases() {
  static const std::vector<std::pair<Extents, std::vector<Index>>> cases = {
      {{64, 64}, {0, 1}},                    // Copy
      {{64, 16, 16}, {0, 2, 1}},             // FVI-Match-Large
      {{16, 8, 24}, {0, 2, 1}},              // FVI-Match-Small
      {{40, 9, 40}, {2, 1, 0}},              // Orthogonal-Distinct
      {{8, 2, 24, 24, 24}, {2, 1, 3, 0, 4}}  // Orthogonal-Arbitrary
  };
  return cases;
}

/// Unsharded reference counters, produced with the IDENTICAL pinned
/// selection and the identical allocation order (in mirror, out
/// mirror, then the plan's texture arrays) the sharded executor uses
/// on each fresh fleet device — the precondition for texture-miss
/// equality (docs/sharding.md).
sim::LaunchCounters reference_counters(const Shape& shape,
                                       const Permutation& perm,
                                       const std::vector<double>& in_host,
                                       const std::vector<double>& out_host) {
  sim::Device ref;
  const TransposeProblem problem =
      TransposeProblem::make(shape, perm, sizeof(double));
  PlanOptions popts;
  popts.elem_size = sizeof(double);
  const PerfModel model(ref.props(), popts.model);
  const KernelSelection sel = select_kernel(problem, model, popts);
  auto in = ref.alloc_copy<double>(in_host);
  auto out = ref.alloc_copy<double>(
      std::span<const double>(out_host.data(), out_host.size()));
  Plan plan = Plan::from_selection(ref, problem, sel);
  return plan.execute_window<double>(in, out, LaunchWindow{}).counters;
}

TEST(ShardCounterAdditivity, SumsExactlyToUnshardedForEverySchema) {
  Rng rng(11);
  for (const auto& [ext, perm_v] : schema_cases()) {
    const Shape shape(ext);
    const Permutation perm(perm_v);
    std::vector<double> in_host(static_cast<std::size_t>(shape.volume()));
    std::vector<double> out_host(static_cast<std::size_t>(shape.volume()),
                                 0.0);
    for (auto& x : in_host) x = rng.uniform01();

    const sim::LaunchCounters ref =
        reference_counters(shape, perm, in_host, out_host);

    for (int n : {1, 2, 3, 4, 7}) {
      Fleet fleet = Fleet::homogeneous(n);  // FRESH devices per run
      ShardOptions sopts;
      sopts.num_shards = n;
      ShardedExecutor ex(fleet, sopts);
      std::vector<double> out = out_host;
      auto res = ex.run<double>(
          shape, perm,
          std::span<const double>(in_host.data(), in_host.size()),
          std::span<double>(out.data(), out.size()));
      ASSERT_TRUE(res.has_value()) << res.status().message();
      EXPECT_TRUE(res->counters_exact);
      const sim::LaunchCounters total = res->counters().total();
      EXPECT_EQ(total.to_json().dump(), ref.to_json().dump())
          << shape.to_string() << perm.to_string() << " at " << n
          << " shards (" << res->shards.size() << " executed)";
      // The fold's additive grid size must cover the full grid.
      EXPECT_EQ(total.grid_blocks, ref.grid_blocks);
    }
  }
}

TEST(ShardCounterAdditivity, CountOnlyRunsMatchFunctionalCounters) {
  // run_count_only uses virtual buffers and kCountOnly mode; with
  // sampling off its summed counters must match the functional run's.
  const Shape shape({40, 9, 40});
  const Permutation perm({2, 1, 0});
  Rng rng(12);
  std::vector<double> in_host(static_cast<std::size_t>(shape.volume()));
  std::vector<double> out_host(static_cast<std::size_t>(shape.volume()));
  for (auto& x : in_host) x = rng.uniform01();

  for (int n : {2, 3}) {
    Fleet ffleet = Fleet::homogeneous(n);
    ShardOptions sopts;
    sopts.num_shards = n;
    ShardedExecutor fex(ffleet, sopts);
    std::vector<double> out = out_host;
    auto fres = fex.run<double>(
        shape, perm, std::span<const double>(in_host.data(), in_host.size()),
        std::span<double>(out.data(), out.size()));
    ASSERT_TRUE(fres.has_value());

    Fleet cfleet = Fleet::homogeneous(n);
    ShardedExecutor cex(cfleet, sopts);
    auto cres = cex.run_count_only(shape, perm, sizeof(double));
    ASSERT_TRUE(cres.has_value());
    EXPECT_TRUE(cres->counters_exact);
    EXPECT_EQ(cres->counters().total().to_json().dump(),
              fres->counters().total().to_json().dump());
  }
}

/// Pins the partition invariants for one problem at every shard count
/// up to past the axis extent.
void check_partition(const Shape& shape, const Permutation& perm) {
  sim::Device probe;  // descriptor source only
  const TransposeProblem problem =
      TransposeProblem::make(shape, perm, sizeof(double));
  PlanOptions popts;
  popts.elem_size = sizeof(double);
  const PerfModel model(probe.props(), popts.model);
  const KernelSelection sel = select_kernel(problem, model, popts);
  const ShardAxis axis = find_shard_axis(problem, sel);
  const Index grid_blocks = selection_grid_blocks(sel);

  for (int n = 1; n <= 9; ++n) {
    const std::vector<ShardRange> ranges =
        partition_axis(axis, n, grid_blocks);
    ASSERT_FALSE(ranges.empty());

    // Block-id space: contiguous, ordered, gap-free, covers [0, grid).
    Index next_block = 0;
    for (const auto& r : ranges) {
      EXPECT_EQ(r.block_begin, next_block);
      EXPECT_GT(r.block_count, 0);
      next_block += r.block_count;
    }
    EXPECT_EQ(next_block, grid_blocks)
        << shape.to_string() << perm.to_string() << " n=" << n;

    // Split dimension: gap-free tiling of [0, dim_extent).
    Index next_dim = 0;
    for (const auto& r : ranges) {
      EXPECT_EQ(r.dim_lo, next_dim);
      EXPECT_GT(r.dim_hi, r.dim_lo);
      next_dim = r.dim_hi;
    }
    EXPECT_EQ(next_dim, axis.dim_extent);

    // Output regions: every element covered exactly once.
    std::vector<int> hits(static_cast<std::size_t>(problem.volume()), 0);
    for (const auto& r : ranges) {
      const RegionRuns rr = region_runs(problem, axis, r);
      for (Index c = 0; c < rr.count; ++c) {
        for (Index k = 0; k < rr.run; ++k)
          ++hits[static_cast<std::size_t>(rr.base + c * rr.period + k)];
      }
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
      if (hits[i] != 1) {
        ADD_FAILURE() << shape.to_string() << perm.to_string() << " n=" << n
                      << ": element " << i << " covered " << hits[i]
                      << " times";
        return;
      }
    }
  }
}

TEST(ShardPartition, ExactForEverySchema) {
  for (const auto& [ext, perm_v] : schema_cases())
    check_partition(Shape(ext), Permutation(perm_v));
}

TEST(ShardPartition, ExactForPrimeExtents) {
  // Prime extents: no shard count divides them evenly, so remainder
  // clamping must carry the partition.
  check_partition(Shape({31, 7, 13}), Permutation({2, 1, 0}));
  check_partition(Shape({13, 31}), Permutation({1, 0}));
  check_partition(Shape({7, 11, 5, 3}), Permutation({3, 0, 2, 1}));
}

TEST(ShardPartition, ExactForSizeOneExtents) {
  check_partition(Shape({1, 64, 1, 64}), Permutation({3, 2, 1, 0}));
  check_partition(Shape({1, 1, 37}), Permutation({2, 0, 1}));
  check_partition(Shape({5, 1, 1}), Permutation({0, 2, 1}));
  check_partition(Shape({1, 1, 1}), Permutation({0, 1, 2}));
}

TEST(ShardPartition, UnsplittableProblemsRunAsOneShard) {
  // A single-block grid exposes no split axis; the executor must fall
  // back to one whole-grid shard rather than fail.
  const Shape shape({4, 4});
  const Permutation perm({1, 0});
  Fleet fleet = Fleet::homogeneous(4);
  ShardedExecutor ex(fleet, {});
  Rng rng(5);
  std::vector<double> in_host(static_cast<std::size_t>(shape.volume()));
  for (auto& x : in_host) x = rng.uniform01();
  std::vector<double> out(in_host.size(), 0.0);
  auto res = ex.run<double>(
      shape, perm, std::span<const double>(in_host.data(), in_host.size()),
      std::span<double>(out.data(), out.size()));
  ASSERT_TRUE(res.has_value());
  EXPECT_GE(res->shards.size(), 1u);
  const sim::LaunchCounters ref =
      reference_counters(shape, perm, in_host,
                         std::vector<double>(in_host.size(), 0.0));
  EXPECT_EQ(res->counters().total().to_json().dump(), ref.to_json().dump());
}

}  // namespace
}  // namespace ttlg::shard
