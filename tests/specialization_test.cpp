// Plan-time kernel specialization (core/stride_program.hpp): the
// compiled stride-program / templated / affine-bulk tiers must be
// BIT-IDENTICAL to the generic kernels — outputs, every LaunchCounters
// field, and the simulated time — at every element width, thread count
// and pattern-cache setting, including awkward prime and size-1
// extents. A separate set of directed tests pins that the tiers
// actually ENGAGE (a builder that rejected everything would pass the
// differential battery trivially on the generic path), that the tier
// survives a plan-file round trip, and that a corrupted tier record is
// classified kDataLoss.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/measure_plan.hpp"
#include "core/plan_io.hpp"
#include "core/ttlg.hpp"
#include "tensor/host_transpose.hpp"
#include "telemetry/metrics.hpp"

namespace ttlg {
namespace {

template <class T>
void fill_random_elems(Rng& rng, std::vector<T>& v) {
  if constexpr (std::is_integral_v<T>) {
    for (auto& x : v) x = static_cast<T>(rng());
  } else {
    for (auto& x : v)
      x = static_cast<T>(rng.uniform01() * 2048.0 - 1024.0);
  }
}

template <class T>
std::uint64_t bits_of(T v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(T));
  return b;
}

struct Artifacts {
  std::vector<std::uint64_t> out_bits;
  sim::LaunchCounters ctr;
  std::uint64_t time_bits = 0;
  Schema schema = Schema::kCopy;
  SpecTier tier = SpecTier::kGeneric;
};

template <class T>
Artifacts run_once(const Shape& shape, const Permutation& perm,
                   bool specialize, int nthreads, bool pattern_cache) {
  sim::Device dev;
  dev.set_num_threads(nthreads);
  dev.set_pattern_cache(pattern_cache);
  Tensor<T> host(shape);
  Rng rng(911);
  fill_random_elems(rng, host.vec());
  auto in = dev.alloc_copy<T>(host.vec());
  auto out = dev.alloc<T>(shape.volume());

  PlanOptions opts;
  opts.specialize = specialize;
  Plan plan;
  const auto res = transpose<T>(dev, in, out, shape, perm, opts, &plan);

  Artifacts a;
  a.schema = plan.schema();
  a.tier = plan.specialization_tier();
  a.ctr = res.counters;
  a.time_bits = std::bit_cast<std::uint64_t>(res.time_s);
  a.out_bits.reserve(static_cast<std::size_t>(shape.volume()));
  for (Index i = 0; i < shape.volume(); ++i)
    a.out_bits.push_back(bits_of<T>(out[i]));

  // Ground truth alongside the differential: both paths must also be
  // CORRECT, not merely identical to each other.
  const Tensor<T> expected = host_transpose(host, perm);
  for (Index i = 0; i < shape.volume(); ++i)
    if (out[i] != expected.at(i)) {
      ADD_FAILURE() << "wrong output at " << i << " (specialize="
                    << specialize << ", " << shape.to_string()
                    << perm.to_string() << ")";
      break;
    }
  return a;
}

void expect_identical(const Artifacts& spec, const Artifacts& gen,
                      const std::string& what) {
  EXPECT_EQ(spec.schema, gen.schema) << what;
  const sim::LaunchCounters& a = spec.ctr;
  const sim::LaunchCounters& b = gen.ctr;
  EXPECT_EQ(a.gld_transactions, b.gld_transactions) << what;
  EXPECT_EQ(a.gst_transactions, b.gst_transactions) << what;
  EXPECT_EQ(a.smem_load_ops, b.smem_load_ops) << what;
  EXPECT_EQ(a.smem_store_ops, b.smem_store_ops) << what;
  EXPECT_EQ(a.smem_bank_conflicts, b.smem_bank_conflicts) << what;
  EXPECT_EQ(a.tex_transactions, b.tex_transactions) << what;
  EXPECT_EQ(a.tex_misses, b.tex_misses) << what;
  EXPECT_EQ(a.special_ops, b.special_ops) << what;
  EXPECT_EQ(a.fma_ops, b.fma_ops) << what;
  EXPECT_EQ(a.grid_blocks, b.grid_blocks) << what;
  EXPECT_EQ(a.block_threads, b.block_threads) << what;
  EXPECT_EQ(a.shared_bytes_per_block, b.shared_bytes_per_block) << what;
  EXPECT_EQ(a.barriers, b.barriers) << what;
  EXPECT_EQ(a.payload_bytes, b.payload_bytes) << what;
  // Simulated time derives from the counters; compare bit-for-bit
  // anyway so a divergent timing path cannot hide.
  EXPECT_EQ(spec.time_bits, gen.time_bits) << what;
  ASSERT_EQ(spec.out_bits.size(), gen.out_bits.size()) << what;
  for (std::size_t i = 0; i < spec.out_bits.size(); ++i)
    ASSERT_EQ(spec.out_bits[i], gen.out_bits[i]) << what << " elem " << i;
}

struct Case {
  Extents ext;
  std::vector<Index> perm;
};

// One directed problem per schema of the taxonomy.
const std::vector<Case>& schema_cases() {
  static const std::vector<Case> cases = {
      {{64, 64, 4}, {0, 1, 2}},               // Copy
      {{64, 16, 16}, {0, 2, 1}},              // FVI-Match-Large
      {{16, 8, 24}, {0, 2, 1}},               // FVI-Match-Small
      {{40, 9, 40}, {2, 1, 0}},               // Orthogonal-Distinct
      {{8, 2, 24, 24, 24}, {2, 1, 3, 0, 4}},  // Orthogonal-Arbitrary
  };
  return cases;
}

// Awkward geometry: prime extents (nothing divides the block shape) and
// size-1 dimensions (degenerate strides, remainder-only classes).
const std::vector<Case>& awkward_cases() {
  static const std::vector<Case> cases = {
      {{31, 37}, {1, 0}},
      {{7, 11, 13}, {2, 0, 1}},
      {{1, 5, 1, 7}, {3, 2, 1, 0}},
      {{13, 1, 29}, {2, 1, 0}},
      {{1, 1, 64}, {2, 1, 0}},
      // Rank 7: the decoder exceeds the templated rank buckets, so the
      // dynamic-rank stride-program interpreter carries the launch.
      {{3, 4, 5, 2, 3, 4, 5}, {6, 5, 4, 3, 2, 1, 0}},
  };
  return cases;
}

template <class T>
void run_battery(const Case& c, int nthreads, bool pattern_cache,
                 SpecTier* engaged) {
  const Shape shape(c.ext);
  const Permutation perm(c.perm);
  const std::string what =
      shape.to_string() + perm.to_string() + " w" +
      std::to_string(sizeof(T)) + " t" + std::to_string(nthreads) +
      (pattern_cache ? " pc" : " nopc");
  const Artifacts gen = run_once<T>(shape, perm, false, nthreads,
                                    pattern_cache);
  const Artifacts spec = run_once<T>(shape, perm, true, nthreads,
                                     pattern_cache);
  EXPECT_EQ(gen.tier, SpecTier::kGeneric) << what;
  expect_identical(spec, gen, what);
  if (engaged && spec.tier > *engaged) *engaged = spec.tier;
}

void run_battery_sized(const Case& c, int elem_size, int nthreads,
                       bool pattern_cache, SpecTier* engaged) {
  switch (elem_size) {
    case 1:
      return run_battery<std::uint8_t>(c, nthreads, pattern_cache, engaged);
    case 2:
      return run_battery<std::uint16_t>(c, nthreads, pattern_cache, engaged);
    case 4:
      return run_battery<float>(c, nthreads, pattern_cache, engaged);
    default:
      return run_battery<double>(c, nthreads, pattern_cache, engaged);
  }
}

TEST(Specialization, BitIdenticalAcrossSchemasWidthsThreadsAndCache) {
  for (const Case& c : schema_cases()) {
    SpecTier engaged = SpecTier::kGeneric;
    for (int elem_size : {1, 2, 4, 8})
      for (int nthreads : {1, 4})
        for (bool pc : {true, false})
          run_battery_sized(c, elem_size, nthreads, pc, &engaged);
    // The differential is only meaningful if the specialized path
    // actually ran: every directed schema case must compile to a
    // non-generic tier.
    EXPECT_NE(engaged, SpecTier::kGeneric)
        << Shape(c.ext).to_string() << Permutation(c.perm).to_string();
  }
}

TEST(Specialization, BitIdenticalOnPrimeAndUnitExtents) {
  for (const Case& c : awkward_cases())
    for (int elem_size : {1, 8})
      for (int nthreads : {1, 4})
        run_battery_sized(c, elem_size, nthreads, true, nullptr);
}

TEST(Specialization, AffineTierEngagesAndIsCounted) {
  // FVI-Match-Large moves whole contiguous runs in both directions:
  // every access is affine, so the whole-tile phase-table tier must
  // engage, and the always-on tier counter must record it.
  auto& reg = telemetry::MetricsRegistry::global();
  const std::int64_t before =
      reg.counter("plan.specialization_tier.affine_bulk").value();
  sim::Device dev;
  Plan plan = make_plan(dev, Shape({64, 16, 16}), Permutation({0, 2, 1}));
  EXPECT_EQ(plan.schema(), Schema::kFviMatchLarge);
  EXPECT_EQ(plan.specialization_tier(), SpecTier::kAffineBulk);
  const std::int64_t after =
      reg.counter("plan.specialization_tier.affine_bulk").value();
  EXPECT_EQ(after, before + 1);
  // The tier is part of the plan's self-description.
  EXPECT_NE(plan.describe().find("specialization=affine_bulk"),
            std::string::npos);
}

TEST(Specialization, OptOutRestoresGenericExactly) {
  sim::Device dev;
  PlanOptions opts;
  opts.specialize = false;
  Plan plan = make_plan(dev, Shape({64, 16, 16}), Permutation({0, 2, 1}),
                        opts);
  EXPECT_EQ(plan.specialization_tier(), SpecTier::kGeneric);
  EXPECT_NE(plan.describe().find("specialization=generic"),
            std::string::npos);
}

TEST(Specialization, EnvSwitchDisablesGlobally) {
  ASSERT_EQ(setenv("TTLG_SPECIALIZE", "0", 1), 0);
  sim::Device dev;
  Plan plan = make_plan(dev, Shape({64, 16, 16}), Permutation({0, 2, 1}));
  ASSERT_EQ(unsetenv("TTLG_SPECIALIZE"), 0);
  EXPECT_EQ(plan.specialization_tier(), SpecTier::kGeneric);

  // And the generic run it produces is bit-identical to an
  // opts.specialize=false run (same artifacts, not merely same tier).
  const Shape shape({64, 16, 16});
  const Permutation perm({0, 2, 1});
  Tensor<double> host(shape);
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out = dev.alloc<double>(shape.volume());
  const auto env_res = plan.execute<double>(in, out);

  PlanOptions opts;
  opts.specialize = false;
  Plan opt_plan = make_plan(dev, shape, perm, opts);
  auto out2 = dev.alloc<double>(shape.volume());
  const auto opt_res = opt_plan.execute<double>(in, out2);
  EXPECT_EQ(env_res.counters.gld_transactions,
            opt_res.counters.gld_transactions);
  EXPECT_EQ(env_res.counters.gst_transactions,
            opt_res.counters.gst_transactions);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(env_res.time_s),
            std::bit_cast<std::uint64_t>(opt_res.time_s));
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(out[i], out2[i]) << i;
}

TEST(Specialization, MeasuredPlansSpecializeToo) {
  sim::Device dev;
  Plan plan =
      make_plan_measured(dev, Shape({40, 9, 40}), Permutation({2, 1, 0}));
  EXPECT_NE(plan.specialization_tier(), SpecTier::kGeneric);
}

TEST(Specialization, CountOnlyAndSampledModesMatchToo) {
  // The counter path must agree in count-only mode (virtual buffers, no
  // storage) and under sampled counting, where only representative
  // blocks execute.
  for (int sampling : {0, 4}) {
    sim::LaunchCounters ctr[2];
    std::uint64_t time_bits[2];
    for (int s = 0; s < 2; ++s) {
      sim::Device dev;
      dev.set_mode(sim::ExecMode::kCountOnly);
      dev.set_sampling(sampling);
      auto in = dev.alloc_virtual<double>(40 * 9 * 40);
      auto out = dev.alloc_virtual<double>(40 * 9 * 40);
      PlanOptions opts;
      opts.specialize = s == 1;
      Plan plan =
          make_plan(dev, Shape({40, 9, 40}), Permutation({2, 1, 0}), opts);
      const auto res = plan.execute<double>(in, out);
      ctr[s] = res.counters;
      time_bits[s] = std::bit_cast<std::uint64_t>(res.time_s);
    }
    EXPECT_EQ(ctr[0].gld_transactions, ctr[1].gld_transactions)
        << "sampling " << sampling;
    EXPECT_EQ(ctr[0].gst_transactions, ctr[1].gst_transactions)
        << "sampling " << sampling;
    EXPECT_EQ(ctr[0].tex_transactions, ctr[1].tex_transactions)
        << "sampling " << sampling;
    EXPECT_EQ(ctr[0].tex_misses, ctr[1].tex_misses)
        << "sampling " << sampling;
    EXPECT_EQ(ctr[0].smem_bank_conflicts, ctr[1].smem_bank_conflicts)
        << "sampling " << sampling;
    EXPECT_EQ(time_bits[0], time_bits[1]) << "sampling " << sampling;
  }
}

// ---------------------------------------------------------------------
// Plan-file persistence of the tier (format v3).

TEST(Specialization, PlanFileRoundTripPreservesTier) {
  sim::Device dev;
  Plan original =
      make_plan(dev, Shape({64, 16, 16}), Permutation({0, 2, 1}));
  ASSERT_NE(original.specialization_tier(), SpecTier::kGeneric);

  std::stringstream buf;
  save_plan(buf, original);
  EXPECT_NE(buf.str().find("spec "), std::string::npos);
  Plan reloaded = load_plan(dev, buf);
  EXPECT_EQ(reloaded.specialization_tier(),
            original.specialization_tier());

  Tensor<double> host(Shape({64, 16, 16}));
  host.fill_iota();
  auto in = dev.alloc_copy<double>(host.vec());
  auto out1 = dev.alloc<double>(host.volume());
  auto out2 = dev.alloc<double>(host.volume());
  const auto r1 = original.execute<double>(in, out1);
  const auto r2 = reloaded.execute<double>(in, out2);
  EXPECT_EQ(r1.counters.gld_transactions, r2.counters.gld_transactions);
  EXPECT_EQ(r1.counters.gst_transactions, r2.counters.gst_transactions);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r1.time_s),
            std::bit_cast<std::uint64_t>(r2.time_s));
  for (Index i = 0; i < host.volume(); ++i)
    ASSERT_EQ(out1[i], out2[i]) << i;
}

// FNV-1a matching plan_io's integrity checksum, so corruption tests can
// forge a VALID checksum over a tampered body — proving the tier check
// itself fires, not merely the checksum.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string with_spec_record(const std::string& text,
                             const std::string& record) {
  // "spec" is the final body record, so everything after it is the
  // checksum line: rebuild the tail wholesale.
  const std::size_t pos = text.find("\nspec ");
  EXPECT_NE(pos, std::string::npos);
  const std::string payload = text.substr(0, pos + 1) + record + "\n";
  // Re-checksum the tampered payload so only the tier logic can object.
  std::ostringstream out;
  out << payload << "checksum " << std::hex << fnv1a(payload) << '\n';
  return out.str();
}

ErrorCode load_code(sim::Device& dev, const std::string& text) {
  std::stringstream s(text);
  try {
    load_plan(dev, s);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "load_plan accepted tampered plan";
  return ErrorCode::kInternal;
}

TEST(Specialization, CorruptedTierRecordIsDataLoss) {
  sim::Device dev;
  Plan plan = make_plan(dev, Shape({64, 16, 16}), Permutation({0, 2, 1}));
  const int tier = static_cast<int>(plan.specialization_tier());
  ASSERT_NE(tier, 0);
  std::stringstream buf;
  save_plan(buf, plan);
  const std::string text = buf.str();

  // Out-of-range tier, valid checksum: rejected by the range check.
  EXPECT_EQ(load_code(dev, with_spec_record(text, "spec 9")),
            ErrorCode::kDataLoss);
  // In-range but WRONG tier, valid checksum: compilation is
  // deterministic, so the re-derived tier disagrees -> data loss.
  const int wrong = tier == 1 ? 2 : 1;
  EXPECT_EQ(load_code(dev, with_spec_record(
                               text, "spec " + std::to_string(wrong))),
            ErrorCode::kDataLoss);
  // Tier record replaced by garbage, valid checksum.
  EXPECT_EQ(load_code(dev, with_spec_record(text, "spec x")),
            ErrorCode::kDataLoss);
  // A stored tier of 0 (saved by a generic-mode process) is NOT an
  // error: the plan loads and simply stays generic.
  std::stringstream generic(with_spec_record(text, "spec 0"));
  Plan loaded = load_plan(dev, generic);
  EXPECT_EQ(loaded.specialization_tier(), SpecTier::kGeneric);
}

}  // namespace
}  // namespace ttlg
