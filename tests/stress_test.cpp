// Stress and differential testing: adversarial shapes (primes, extreme
// aspect ratios, size-1 dims, deep ranks) through the full planner, with
// counter-invariant checks on every run.
#include <gtest/gtest.h>

#include <numeric>

#include "core/ttlg.hpp"

namespace ttlg {
namespace {

void stress_one(const Extents& ext, const std::vector<Index>& perm_v) {
  const Shape shape(ext);
  const Permutation perm(perm_v);
  sim::Device dev;
  Tensor<double> host_in(shape);
  host_in.fill_iota();
  auto in = dev.alloc_copy<double>(host_in.vec());
  auto out = dev.alloc<double>(shape.volume());
  Plan plan = make_plan(dev, shape, perm);
  const auto res = plan.execute<double>(in, out);

  // Functional correctness.
  const Tensor<double> expected = host_transpose(host_in, perm);
  for (Index i = 0; i < shape.volume(); ++i) {
    ASSERT_EQ(out[i], expected.at(i))
        << shape.to_string() << perm.to_string() << " schema "
        << to_string(plan.schema()) << " at " << i;
  }

  // Counter invariants: every element is loaded and stored exactly once
  // (pure permutation), so payload is exactly 2*V*8 bytes; transactions
  // can never carry more payload than their capacity.
  EXPECT_EQ(res.counters.payload_bytes, 2 * shape.volume() * 8);
  EXPECT_LE(res.counters.coalescing_efficiency(), 1.0 + 1e-9);
  EXPECT_GE(res.counters.gld_transactions,
            (shape.volume() * 8 + 127) / 128);  // lower bound: ideal
  EXPECT_GT(res.time_s, 0.0);
  EXPECT_GE(res.time_s, plan.predicted_time_s() * 0.0);  // finite, sane
}

TEST(Stress, ExtremeAspectRatios) {
  stress_one({1, 4096}, {1, 0});
  stress_one({4096, 1}, {1, 0});
  stress_one({2, 8192}, {1, 0});
  stress_one({8192, 2}, {1, 0});
  stress_one({3, 5, 4096}, {2, 1, 0});
  stress_one({4096, 5, 3}, {2, 0, 1});
}

TEST(Stress, PrimeExtents) {
  stress_one({31, 37}, {1, 0});
  stress_one({13, 17, 19}, {2, 0, 1});
  stress_one({7, 11, 13, 17}, {3, 1, 2, 0});
  stress_one({5, 7, 11, 13, 3}, {4, 2, 0, 3, 1});
}

TEST(Stress, ManySizeOneDims) {
  stress_one({1, 1, 64, 1, 64, 1}, {4, 1, 0, 3, 2, 5});
  stress_one({64, 1, 1, 1, 64}, {4, 3, 2, 1, 0});
  stress_one({1, 1, 1, 1}, {3, 2, 1, 0});
}

TEST(Stress, SingleElementAndTiny) {
  stress_one({1}, {0});
  stress_one({2}, {0});
  stress_one({2, 2}, {1, 0});
  stress_one({3, 2, 2}, {2, 1, 0});
}

class StressRandom : public ::testing::TestWithParam<int> {};

TEST_P(StressRandom, RandomProblems) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int iter = 0; iter < 8; ++iter) {
    const Index rank = static_cast<Index>(rng.uniform(2, 7));
    Extents ext;
    Index vol = 1;
    for (Index d = 0; d < rank; ++d) {
      // Mix tiny and mid extents, bias toward awkward (non-power-of-2).
      const Index e = static_cast<Index>(rng.uniform(1, 2) == 1
                                             ? rng.uniform(1, 6)
                                             : rng.uniform(7, 37));
      ext.push_back(e);
      vol *= e;
    }
    if (vol > (1 << 19)) continue;
    std::vector<Index> perm(static_cast<std::size_t>(rank));
    std::iota(perm.begin(), perm.end(), Index{0});
    for (std::size_t i = perm.size(); i > 1; --i)
      std::swap(perm[i - 1], perm[rng.uniform(0, i - 1)]);
    stress_one(ext, perm);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressRandom, ::testing::Range(0, 10));

TEST(Stress, RoundTripThroughInversePlan) {
  // permute then inverse-permute on the device: must reproduce input.
  const Shape shape({24, 18, 10, 6});
  const Permutation perm({3, 0, 2, 1});
  sim::Device dev;
  Tensor<double> host(shape);
  host.fill_random(77);
  auto a = dev.alloc_copy<double>(host.vec());
  auto b = dev.alloc<double>(shape.volume());
  auto c = dev.alloc<double>(shape.volume());
  Plan fwd = make_plan(dev, shape, perm);
  Plan bwd = make_plan(dev, perm.apply(shape), perm.inverse());
  fwd.execute<double>(a, b);
  bwd.execute<double>(b, c);
  for (Index i = 0; i < shape.volume(); ++i)
    ASSERT_EQ(c[i], host.at(i)) << i;
}

}  // namespace
}  // namespace ttlg
