#include <gtest/gtest.h>

#include "common/error.hpp"

#include <sstream>

#include "common/table.hpp"

namespace ttlg {
namespace {

TEST(Table, AlignedTextOutput) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // The rule line separates header from body.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW((t.add_row({"only one"})), Error);
  EXPECT_THROW((Table(std::vector<std::string>{})), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace ttlg
