#include <gtest/gtest.h>

#include "common/error.hpp"

#include "core/planner.hpp"

namespace ttlg {
namespace {

Schema classify_case(const Extents& ext, const std::vector<Index>& perm) {
  return classify(
      TransposeProblem::make(Shape(ext), Permutation(perm), 8));
}

TEST(Taxonomy, IdentityIsCopy) {
  EXPECT_EQ(classify_case({8, 8, 8}, {0, 1, 2}), Schema::kCopy);
  EXPECT_EQ(classify_case({64}, {0}), Schema::kCopy);
  // Fusible to identity even when written as a permutation of rank 3.
  EXPECT_EQ(classify_case({4, 4, 4}, {0, 1, 2}), Schema::kCopy);
}

TEST(Taxonomy, FviMatchThresholdAtWarpSize) {
  EXPECT_EQ(classify_case({32, 8, 8}, {0, 2, 1}), Schema::kFviMatchLarge);
  EXPECT_EQ(classify_case({31, 8, 8}, {0, 2, 1}), Schema::kFviMatchSmall);
  EXPECT_EQ(classify_case({33, 8, 8}, {0, 2, 1}), Schema::kFviMatchLarge);
}

TEST(Taxonomy, FviMatchSmallNeedsWarpFillingPairs) {
  // n0 * ext(i1) must reach 32 on input AND n0 * ext(perm[1]) on output.
  EXPECT_EQ(classify_case({16, 2, 2, 64}, {0, 3, 1, 2}),
            Schema::kFviMatchSmall);  // 16*2=32 in, 16*64 out
  EXPECT_EQ(classify_case({8, 2, 8}, {0, 2, 1}),
            Schema::kOrthogonalArbitrary);  // 8*2 < 32 -> model decides
}

TEST(Taxonomy, DisjointPrefixesAreOrthogonalDistinct) {
  EXPECT_EQ(classify_case({64, 64}, {1, 0}), Schema::kOrthogonalDistinct);
  EXPECT_EQ(classify_case({32, 32, 32, 32}, {3, 2, 1, 0}),
            Schema::kOrthogonalDistinct);
  // Paper §III: combined dims a,b on input vs d on output, all disjoint.
  EXPECT_EQ(classify_case({16, 2, 32, 32}, {3, 2, 1, 0}),
            Schema::kOrthogonalDistinct);
}

TEST(Taxonomy, OverlappingPrefixesAreOrthogonalArbitrary) {
  // Paper §III example: [8,2,8,8] -> [c,b,d,a].
  EXPECT_EQ(classify_case({8, 2, 8, 8}, {2, 1, 3, 0}),
            Schema::kOrthogonalArbitrary);
}

TEST(Taxonomy, FusionHappensBeforeClassification) {
  // (1,2) fuse into a 64-wide FVI on both sides -> FVI-Match-Large
  // after fusion even though raw dim 0 moved.
  EXPECT_EQ(classify_case({8, 8, 4, 4}, {0, 1, 3, 2}),
            Schema::kFviMatchLarge);
}

TEST(Taxonomy, SelectKernelProducesValidConfigs) {
  const sim::DeviceProperties props = sim::DeviceProperties::tesla_k40c();
  const PerfModel model(props);
  const PlanOptions opts;
  // One problem per schema; selection must agree with classify (or, for
  // the overlapping case, be one of the two model-arbitrated schemas).
  struct CaseSpec {
    Extents ext;
    std::vector<Index> perm;
  };
  for (const auto& c : std::vector<CaseSpec>{
           {{8, 8, 8}, {0, 1, 2}},
           {{64, 8, 8}, {0, 2, 1}},
           {{16, 8, 8}, {0, 2, 1}},
           {{64, 64}, {1, 0}},
           {{8, 2, 8, 8}, {2, 1, 3, 0}},
       }) {
    const auto problem =
        TransposeProblem::make(Shape(c.ext), Permutation(c.perm), 8);
    const auto sel = select_kernel(problem, model, opts);
    EXPECT_GT(sel.predicted_s, 0.0);
    EXPECT_GE(sel.candidates_considered, 1);
    if (classify(problem) != Schema::kOrthogonalArbitrary) {
      EXPECT_EQ(sel.schema, classify(problem));
    } else {
      EXPECT_TRUE(sel.schema == Schema::kOrthogonalArbitrary ||
                  sel.schema == Schema::kOrthogonalDistinct ||
                  sel.schema == Schema::kFviMatchSmall);
    }
  }
}

// The error taxonomy is load-bearing API: the degradation ladder, the
// serving retry policy and client backoff all branch on retryable().
// Pin the NAME and the RETRYABILITY of every code so adding or
// reclassifying one is a deliberate, test-visible decision.
TEST(Taxonomy, ErrorCodeNamesAndRetryabilityArePinned) {
  struct CodeSpec {
    ErrorCode code;
    const char* name;
    bool retryable;
  };
  const CodeSpec specs[] = {
      {ErrorCode::kInvalidArgument, "InvalidArgument", false},
      {ErrorCode::kUnsupported, "Unsupported", true},
      {ErrorCode::kResourceExhausted, "ResourceExhausted", true},
      {ErrorCode::kDataLoss, "DataLoss", false},
      {ErrorCode::kFaultInjected, "FaultInjected", true},
      {ErrorCode::kInternal, "Internal", false},
      // DeadlineExceeded is deliberately NOT retryable: a request whose
      // deadline has passed gains nothing from another rung or retry.
      {ErrorCode::kDeadlineExceeded, "DeadlineExceeded", false},
      // Unavailable (shed / over-quota) is the retryable backpressure
      // signal clients react to with backoff-and-resubmit.
      {ErrorCode::kUnavailable, "Unavailable", true},
  };
  for (const auto& s : specs) {
    EXPECT_STREQ(to_string(s.code), s.name);
    EXPECT_EQ(retryable(s.code), s.retryable) << s.name;
  }
  // Exhaustiveness guard: if a new code is added, this count (and the
  // table above) must be updated together.
  EXPECT_EQ(static_cast<int>(ErrorCode::kUnavailable), 7);
}

TEST(Taxonomy, OdMaxSliceVolScalesWithVolume) {
  const auto props = sim::DeviceProperties::tesla_k40c();
  const auto small =
      TransposeProblem::make(Shape({64, 64}), Permutation({1, 0}), 8);
  const auto big = TransposeProblem::make(Shape({2048, 2048}),
                                          Permutation({1, 0}), 8);
  EXPECT_LE(od_max_slice_vol(small, props, 4),
            od_max_slice_vol(big, props, 4));
  EXPECT_GE(od_max_slice_vol(small, props, 4), 64 * 64);
}

}  // namespace
}  // namespace ttlg
