// Telemetry subsystem: Json round-trips, metrics registry export, trace
// span nesting, plan-cache counters, and model-accuracy aggregation.
// Tests that touch the GLOBAL registry/collector scope the level with
// ScopedLevel and clear the globals they used, so suites stay
// order-independent.
#include <gtest/gtest.h>

#include "core/plan_cache.hpp"
#include "core/ttlg.hpp"
#include "telemetry/accuracy.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace ttlg {
namespace {

using telemetry::Json;

TEST(Json, ScalarsRoundTrip) {
  for (const std::string text :
       {"null", "true", "false", "0", "-17", "9007199254740993", "3.25",
        "-1e-3", "\"hi\"", "\"\"", "[]", "{}"}) {
    const Json j = Json::parse(text);
    EXPECT_EQ(Json::parse(j.dump()), j) << text;
  }
}

TEST(Json, NestedDocumentRoundTrip) {
  Json doc = Json::object();
  doc["name"] = "ttlg";
  doc["version"] = 1;
  doc["pi"] = 3.14159;
  doc["flags"] = Json::array();
  doc["flags"].push_back(true);
  doc["flags"].push_back(nullptr);
  doc["nested"]["deep"]["leaf"] = -42;

  const std::string compact = doc.dump();
  const std::string pretty = doc.dump(2);
  EXPECT_EQ(Json::parse(compact), doc);
  EXPECT_EQ(Json::parse(pretty), doc);
  // Insertion order is preserved in the serialized form.
  EXPECT_LT(compact.find("\"name\""), compact.find("\"version\""));
  EXPECT_LT(compact.find("\"version\""), compact.find("\"pi\""));
}

TEST(Json, StringEscapes) {
  const std::string raw = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  Json j = raw;
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.as_str(), raw);
  // Control characters must be escaped in the output.
  EXPECT_EQ(j.dump().find('\n'), std::string::npos);
  EXPECT_NE(j.dump().find("\\u0001"), std::string::npos);
}

TEST(Json, DoubleFormattingSurvivesRoundTrip) {
  for (const double d : {0.1, 1.0 / 3.0, 1e300, 5e-324, 123456.789}) {
    const Json j = d;
    EXPECT_DOUBLE_EQ(Json::parse(j.dump()).as_double(), d) << d;
  }
}

TEST(Json, ParseErrors) {
  for (const std::string bad : {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3",
                                "\"unterminated", "[1] trailing", "{'a':1}"}) {
    EXPECT_THROW(Json::parse(bad), Error) << bad;
  }
}

TEST(TelemetryLevel, ParseAndScopedOverride) {
  EXPECT_EQ(telemetry::parse_level("off"), telemetry::Level::kOff);
  EXPECT_EQ(telemetry::parse_level("counters"), telemetry::Level::kCounters);
  EXPECT_EQ(telemetry::parse_level("trace"), telemetry::Level::kTrace);
  EXPECT_FALSE(telemetry::parse_level("bogus").has_value());

  const telemetry::Level before = telemetry::level();
  {
    const telemetry::ScopedLevel scoped(telemetry::Level::kTrace);
    EXPECT_TRUE(telemetry::trace_enabled());
    {
      const telemetry::ScopedLevel off(telemetry::Level::kOff);
      EXPECT_FALSE(telemetry::counters_enabled());
    }
    EXPECT_TRUE(telemetry::trace_enabled());
  }
  EXPECT_EQ(telemetry::level(), before);

  // The optional form is a no-op when empty.
  const telemetry::ScopedLevel noop{std::optional<telemetry::Level>{}};
  EXPECT_EQ(telemetry::level(), before);
}

TEST(MetricsRegistry, CountersGaugesHistograms) {
  telemetry::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a.hits").inc();
  reg.counter("a.hits").inc(4);
  reg.gauge("a.load").set(0.75);
  auto& h = reg.histogram("a.lat_us", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(50.0);
  h.observe(1e6);  // overflow bucket

  EXPECT_EQ(reg.counter_value("a.hits"), 5);
  EXPECT_EQ(reg.counter_value("absent"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("a.load"), 0.75);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[3], 1);

  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, JsonExportRoundTrips) {
  telemetry::MetricsRegistry reg;
  reg.counter("x.count").inc(7);
  reg.gauge("x.value").set(2.5);
  reg.histogram("x.hist", {10.0}).observe(3.0);

  const Json j = Json::parse(reg.to_json().dump());
  EXPECT_EQ(j.at("counters").at("x.count").as_int(), 7);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("x.value").as_double(), 2.5);
  EXPECT_EQ(j.at("histograms").at("x.hist").at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(j.at("histograms").at("x.hist").at("sum").as_double(), 3.0);

  // The text rendering mentions every metric.
  const std::string table = reg.to_table();
  EXPECT_NE(table.find("x.count"), std::string::npos);
  EXPECT_NE(table.find("x.hist"), std::string::npos);
}

TEST(Trace, SpanNestingAndContainment) {
  const telemetry::ScopedLevel scoped(telemetry::Level::kTrace);
  auto& tc = telemetry::TraceCollector::global();
  tc.clear();
  {
    telemetry::TraceSpan outer("outer", "test");
    ASSERT_TRUE(outer.active());
    outer.arg("k", 1);
    {
      telemetry::TraceSpan inner("inner", "test");
      inner.instant("tick", Json::object());
    }
  }
  const auto events = tc.events();
  tc.clear();

  // Destruction order: tick (instant), inner, outer.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "tick");
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  // chrome://tracing reconstructs nesting from [ts, ts+dur] containment.
  EXPECT_GE(events[1].ts_us, events[2].ts_us);
  EXPECT_LE(events[1].ts_us + events[1].dur_us,
            events[2].ts_us + events[2].dur_us + 1e-6);
  EXPECT_EQ(events[2].args.at("k").as_int(), 1);

  // With tracing off a span is inert and records nothing.
  const telemetry::ScopedLevel off(telemetry::Level::kOff);
  telemetry::TraceSpan dead("dead", "test");
  EXPECT_FALSE(dead.active());
  EXPECT_TRUE(tc.empty());
}

TEST(Trace, JsonIsChromeTracingShaped) {
  const telemetry::ScopedLevel scoped(telemetry::Level::kTrace);
  auto& tc = telemetry::TraceCollector::global();
  tc.clear();
  { telemetry::TraceSpan span("s", "cat"); }
  const Json j = Json::parse(tc.to_json().dump());
  tc.clear();

  EXPECT_EQ(j.at("displayTimeUnit").as_str(), "ms");
  ASSERT_EQ(j.at("traceEvents").size(), 1u);
  const Json& ev = j.at("traceEvents").at(std::size_t{0});
  EXPECT_EQ(ev.at("name").as_str(), "s");
  EXPECT_EQ(ev.at("cat").as_str(), "cat");
  EXPECT_EQ(ev.at("ph").as_str(), "X");
  EXPECT_TRUE(ev.contains("ts"));
  EXPECT_TRUE(ev.contains("dur"));
  EXPECT_TRUE(ev.contains("pid"));
  EXPECT_TRUE(ev.contains("tid"));
}

TEST(PlanCache, HitMissCountersReachGlobalRegistry) {
  const telemetry::ScopedLevel scoped(telemetry::Level::kCounters);
  auto& reg = telemetry::MetricsRegistry::global();
  reg.clear();
  telemetry::ModelAccuracy::global().clear();

  sim::Device dev;
  PlanCache cache;
  const Shape shape({16, 16, 16});
  const Permutation perm({2, 0, 1});
  bool hit = true;
  cache.get(dev, shape, perm, {}, &hit);
  EXPECT_FALSE(hit);
  cache.get(dev, shape, perm, {}, &hit);
  cache.get(dev, shape, perm, {}, &hit);
  EXPECT_TRUE(hit);

  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(reg.counter_value("plan_cache.hit"), 2);
  EXPECT_EQ(reg.counter_value("plan_cache.miss"), 1);
  EXPECT_EQ(reg.counter_value("plan.created"), 1);
  reg.clear();
  telemetry::ModelAccuracy::global().clear();
}

TEST(PlanCache, LruEvictionAtCapacity) {
  sim::Device dev;
  PlanCache cache(2);
  const Shape shape({8, 8, 8});
  cache.get(dev, shape, Permutation({2, 0, 1}));
  cache.get(dev, shape, Permutation({1, 2, 0}));
  // Touch the first entry so the second becomes the LRU victim.
  cache.get(dev, shape, Permutation({2, 0, 1}));
  cache.get(dev, shape, Permutation({0, 2, 1}));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  bool hit = false;
  cache.get(dev, shape, Permutation({2, 0, 1}), {}, &hit);
  EXPECT_TRUE(hit);  // survived (recently used)
  cache.get(dev, shape, Permutation({1, 2, 0}), {}, &hit);
  EXPECT_FALSE(hit);  // was evicted

  // Shrinking the capacity evicts immediately.
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ModelAccuracy, AggregatesResiduals) {
  telemetry::ModelAccuracy acc;
  acc.record("OD", 1.1e-3, 1.0e-3);  // +10%
  acc.record("OD", 0.9e-3, 1.0e-3);  // -10%
  acc.record("OA", 2.0e-3, 0.0);     // excluded from ratios

  EXPECT_EQ(acc.observations("OD"), 2);
  const Json j = Json::parse(acc.to_json().dump());
  EXPECT_NEAR(j.at("OD").at("mean_abs_rel_err").as_double(), 0.1, 1e-9);
  EXPECT_NEAR(j.at("OD").at("bias_rel_err").as_double(), 0.0, 1e-9);
  EXPECT_EQ(j.at("ALL").at("n").as_int(), 3);

  const std::string report = acc.report();
  EXPECT_NE(report.find("OD"), std::string::npos);
  EXPECT_NE(report.find("ALL"), std::string::npos);
  acc.clear();
  EXPECT_TRUE(acc.empty());
}

TEST(ModelAccuracy, PlanExecutionFeedsGlobalReport) {
  const telemetry::ScopedLevel scoped(telemetry::Level::kCounters);
  auto& acc = telemetry::ModelAccuracy::global();
  auto& reg = telemetry::MetricsRegistry::global();
  acc.clear();
  reg.clear();

  sim::Device dev;
  const Shape shape({32, 32});
  auto in = dev.alloc<double>(shape.volume());
  auto out = dev.alloc<double>(shape.volume());
  Plan plan = make_plan(dev, shape, Permutation({1, 0}));
  plan.execute<double>(in, out);
  plan.execute<double>(in, out);

  EXPECT_EQ(acc.observations(to_string(plan.schema())), 2);
  EXPECT_EQ(reg.counter_value("plan.executions"), 2);
  acc.clear();
  reg.clear();
}

}  // namespace
}  // namespace ttlg
