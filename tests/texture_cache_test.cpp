#include <gtest/gtest.h>

#include "common/error.hpp"

#include "gpusim/texture_cache.hpp"

namespace ttlg::sim {
namespace {

TEST(TextureCache, ColdMissThenHit) {
  TextureCache c(16, 32);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(31));  // same 32-byte line
  EXPECT_FALSE(c.access(32)); // next line
  EXPECT_EQ(c.misses(), 2);
  EXPECT_EQ(c.hits(), 2);
}

TEST(TextureCache, DirectMappedEviction) {
  TextureCache c(4, 32);  // lines 0 and 4 collide (slot = line % 4)
  EXPECT_FALSE(c.access(0 * 32));
  EXPECT_FALSE(c.access(4 * 32));
  EXPECT_FALSE(c.access(0 * 32));  // evicted by line 4
}

TEST(TextureCache, DisjointLinesAllFit) {
  TextureCache c(8, 32);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(c.access(i * 32));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(c.access(i * 32));
}

TEST(TextureCache, ResetClearsState) {
  TextureCache c(8, 32);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.hits(), 0);
  EXPECT_EQ(c.misses(), 0);
  EXPECT_FALSE(c.access(0));
}

TEST(TextureCache, RejectsBadGeometry) {
  EXPECT_THROW(TextureCache(0, 32), Error);
  EXPECT_THROW(TextureCache(8, 0), Error);
}

}  // namespace
}  // namespace ttlg::sim
