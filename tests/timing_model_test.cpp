#include <gtest/gtest.h>

#include "gpusim/timing_model.hpp"

namespace ttlg::sim {
namespace {

LaunchCounters base_counters() {
  LaunchCounters c;
  c.grid_blocks = 1000;
  c.block_threads = 256;
  c.gld_transactions = 500'000;
  c.gst_transactions = 500'000;
  c.smem_load_ops = 100'000;
  c.smem_store_ops = 100'000;
  c.payload_bytes = 1'000'000 * 128;
  return c;
}

TEST(TimingModel, MoreTrafficTakesLonger) {
  const auto props = DeviceProperties::tesla_k40c();
  auto c = base_counters();
  const double t1 = kernel_time_seconds(props, c);
  c.gld_transactions *= 2;
  const double t2 = kernel_time_seconds(props, c);
  EXPECT_GT(t2, t1);
}

TEST(TimingModel, BandwidthBoundCaseMatchesEffectiveBandwidth) {
  const auto props = DeviceProperties::tesla_k40c();
  const auto c = base_counters();
  const auto t = kernel_timing(props, c);
  const double bytes = 1e6 * 128;
  EXPECT_NEAR(t.dram_s, bytes / (props.effective_bandwidth_gbps * 1e9),
              t.dram_s * 0.01);
  EXPECT_GE(t.total_s, t.dram_s);
  EXPECT_EQ(t.occupancy, 1.0);
}

TEST(TimingModel, FewBlocksStarveBandwidth) {
  const auto props = DeviceProperties::tesla_k40c();
  auto c = base_counters();
  c.grid_blocks = 2;  // far below saturation
  const auto starved = kernel_timing(props, c);
  EXPECT_LT(starved.occupancy, 0.2);
  EXPECT_GT(starved.dram_s, kernel_timing(props, base_counters()).dram_s);
}

TEST(TimingModel, BankConflictsCanDominate) {
  const auto props = DeviceProperties::tesla_k40c();
  auto c = base_counters();
  const double before = kernel_time_seconds(props, c);
  c.smem_bank_conflicts = 31 * (c.smem_load_ops + c.smem_store_ops) * 10;
  const double after = kernel_time_seconds(props, c);
  EXPECT_GT(after, before * 2);
}

TEST(TimingModel, SpecialOpsCanDominate) {
  const auto props = DeviceProperties::tesla_k40c();
  auto c = base_counters();
  c.special_ops = 100'000'000;
  const auto t = kernel_timing(props, c);
  EXPECT_GT(t.alu_s, t.dram_s);
  EXPECT_GE(t.total_s, t.alu_s);
}

TEST(TimingModel, SharedMemoryLimitsResidency) {
  const auto props = DeviceProperties::tesla_k40c();
  auto c = base_counters();
  c.grid_blocks = 60;  // two blocks per SM at most when smem-bound
  c.shared_bytes_per_block = 24 * 1024;
  const auto heavy = kernel_timing(props, c);
  c.shared_bytes_per_block = 1024;
  const auto light = kernel_timing(props, c);
  EXPECT_LE(light.total_s, heavy.total_s);
}

TEST(TimingModel, WaveQuantizationAddsOverhead) {
  const auto props = DeviceProperties::tesla_k40c();
  auto c = base_counters();
  c.grid_blocks = 1'000'000;
  const auto t = kernel_timing(props, c);
  EXPECT_GT(t.waves, 1000);
  EXPECT_GT(t.overhead_s, 1000 * props.wave_overhead_s);
}

TEST(TimingModel, EmptyLaunchIsJustOverhead) {
  const auto props = DeviceProperties::tesla_k40c();
  LaunchCounters c;
  EXPECT_DOUBLE_EQ(kernel_time_seconds(props, c), props.launch_overhead_s);
}

TEST(Counters, CoalescingEfficiency) {
  LaunchCounters c;
  c.gld_transactions = 10;
  c.payload_bytes = 10 * 128;
  EXPECT_DOUBLE_EQ(c.coalescing_efficiency(), 1.0);
  c.gld_transactions = 20;
  EXPECT_DOUBLE_EQ(c.coalescing_efficiency(), 0.5);
}

TEST(Counters, Accumulation) {
  LaunchCounters a, b;
  a.gld_transactions = 5;
  b.gld_transactions = 7;
  b.smem_bank_conflicts = 3;
  a += b;
  EXPECT_EQ(a.gld_transactions, 12);
  EXPECT_EQ(a.smem_bank_conflicts, 3);
}

}  // namespace
}  // namespace ttlg::sim
