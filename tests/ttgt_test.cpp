// TTGT contraction module: spec parsing, GEMM kernel, planning with the
// §V model, and end-to-end numerical agreement with the reference
// contraction.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

#include "ttgt/contraction.hpp"
#include "ttgt/gemm_kernel.hpp"

namespace ttlg::ttgt {
namespace {

TEST(ContractionSpec, ParsesClassicCases) {
  const auto s = ContractionSpec::parse("iak,kbj->abij");
  EXPECT_EQ(s.contracted, "k");
  EXPECT_EQ(s.free_a, "ia");
  EXPECT_EQ(s.free_b, "bj");

  const auto mm = ContractionSpec::parse("mk,kn->mn");
  EXPECT_EQ(mm.contracted, "k");
  EXPECT_EQ(mm.free_a, "m");
  EXPECT_EQ(mm.free_b, "n");

  const auto multi = ContractionSpec::parse("abef,cdef->abcd");
  EXPECT_EQ(multi.contracted, "ef");
  EXPECT_EQ(multi.free_a, "ab");
  EXPECT_EQ(multi.free_b, "cd");
}

TEST(ContractionSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(ContractionSpec::parse("abc"), Error);        // no arrow
  EXPECT_THROW(ContractionSpec::parse("ab->ab"), Error);     // one input
  EXPECT_THROW(ContractionSpec::parse("aa,ab->b"), Error);   // repeat in A
  EXPECT_THROW(ContractionSpec::parse("ab,bc->ad"), Error);  // d undefined
  EXPECT_THROW(ContractionSpec::parse("ab,cb->a"), Error);   // c dangling
  EXPECT_THROW(ContractionSpec::parse("aB,Bc->ac"), Error);  // uppercase
  EXPECT_THROW(ContractionSpec::parse("ab,bc->abc"), Error); // batch index b
}

TEST(GemmKernel, MatchesReferenceMultiply) {
  const Index m = 40, n = 24, k = 56;  // remainder tiles on every side
  std::vector<double> a(m * k), b(k * n), c_ref(m * n, 0.0);
  Rng rng(3);
  for (auto& v : a) v = rng.uniform01();
  for (auto& v : b) v = rng.uniform01();
  for (Index j = 0; j < n; ++j)
    for (Index kk = 0; kk < k; ++kk)
      for (Index i = 0; i < m; ++i)
        c_ref[j * m + i] += a[kk * m + i] * b[j * k + kk];

  sim::Device dev;
  auto da = dev.alloc_copy<double>(std::span<const double>(a));
  auto db = dev.alloc_copy<double>(std::span<const double>(b));
  auto dc = dev.alloc<double>(m * n);
  const auto run =
      launch_gemm<double>(dev, GemmConfig::make(m, n, k), da, db, dc);
  EXPECT_GT(run.counters.fma_ops, 0);
  for (Index i = 0; i < m * n; ++i)
    ASSERT_NEAR(dc[i], c_ref[static_cast<std::size_t>(i)], 1e-9) << i;
}

TEST(GemmKernel, AlphaBetaEpilogue) {
  const Index m = 32, n = 32, k = 32;
  std::vector<double> a(m * k, 1.0), b(k * n, 1.0), c0(m * n, 10.0);
  sim::Device dev;
  auto da = dev.alloc_copy<double>(std::span<const double>(a));
  auto db = dev.alloc_copy<double>(std::span<const double>(b));
  auto dc = dev.alloc_copy<double>(std::span<const double>(c0));
  launch_gemm<double>(dev, GemmConfig::make(m, n, k), da, db, dc, 2.0, 0.5);
  // Every C element: 2 * (sum of 32 ones) + 0.5 * 10 = 69.
  for (Index i = 0; i < m * n; ++i) ASSERT_DOUBLE_EQ(dc[i], 69.0);
}

TEST(GemmKernel, StagingIsCoalescedAndConflictFree) {
  const Index m = 64, n = 64, k = 64;
  sim::Device dev;
  dev.set_mode(sim::ExecMode::kCountOnly);
  auto da = dev.alloc_virtual<double>(m * k);
  auto db = dev.alloc_virtual<double>(k * n);
  auto dc = dev.alloc_virtual<double>(m * n);
  const auto run =
      launch_gemm<double>(dev, GemmConfig::make(m, n, k), da, db, dc);
  EXPECT_EQ(run.counters.smem_bank_conflicts, 0);
  EXPECT_EQ(run.counters.fma_ops, m * n * k);
  EXPECT_DOUBLE_EQ(run.counters.coalescing_efficiency(), 1.0);
}

TEST(PlanTtgt, PicksLayoutsAndPredicts) {
  const auto spec = ContractionSpec::parse("iak,kbj->abij");
  const Shape a_shape({12, 10, 14});  // i,a,k
  const Shape b_shape({14, 9, 11});   // k,b,j
  const auto plan = plan_ttgt(sim::DeviceProperties::tesla_k40c(), spec,
                              a_shape, b_shape);
  EXPECT_EQ(plan.m, 120);
  EXPECT_EQ(plan.n, 99);
  EXPECT_EQ(plan.k, 14);
  EXPECT_EQ(plan.c_shape, Shape({10, 9, 12, 11}));
  EXPECT_GT(plan.predicted_total_s, 0.0);
  ASSERT_EQ(plan.steps.size(), 4u);
  EXPECT_NE(plan.describe().find("GEMM 120x99x14"), std::string::npos);
}

TEST(PlanTtgt, RejectsExtentMismatch) {
  const auto spec = ContractionSpec::parse("mk,kn->mn");
  EXPECT_THROW(plan_ttgt(sim::DeviceProperties::tesla_k40c(), spec,
                         Shape({8, 9}), Shape({10, 7})),
               Error);  // k disagrees: 9 vs 10
}

class TtgtEndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(TtgtEndToEnd, MatchesReferenceContraction) {
  const auto spec = ContractionSpec::parse(GetParam());
  // Assign small distinct extents per letter, deterministically.
  std::map<char, Index> extents;
  Index next = 5;
  for (char c : spec.a_indices + spec.b_indices)
    if (!extents.count(c)) extents[c] = next++;
  Extents ae, be;
  for (char c : spec.a_indices) ae.push_back(extents[c]);
  for (char c : spec.b_indices) be.push_back(extents[c]);

  Tensor<double> a{Shape(ae)}, b{Shape(be)};
  a.fill_random(1);
  b.fill_random(2);

  sim::Device dev;
  const auto plan = plan_ttgt(dev.props(), spec, a.shape(), b.shape());
  const auto res = execute_ttgt(dev, plan, a, b);
  const Tensor<double> ref = contract_reference(spec, a, b);
  ASSERT_EQ(res.c.shape(), ref.shape());
  for (Index i = 0; i < ref.volume(); ++i)
    ASSERT_NEAR(res.c.at(i), ref.at(i), 1e-9)
        << GetParam() << " at " << i;
  EXPECT_GT(res.gemm_s, 0.0);
  EXPECT_GE(res.total_s, res.gemm_s);
}

INSTANTIATE_TEST_SUITE_P(Specs, TtgtEndToEnd,
                         ::testing::Values("mk,kn->mn",      // plain GEMM
                                           "km,kn->mn",      // A transposed
                                           "iak,kbj->abij",  // paper-style
                                           "abef,cdef->abcd",
                                           "xay,ybx->ab",
                                           "pqr,rs->spq"));

TEST(TtgtEndToEnd, NoTransposeNeededWhenAlreadyReady) {
  // "mk,kn->mn" with both operands already GEMM-ready: every transpose
  // step should be skipped.
  const auto spec = ContractionSpec::parse("mk,kn->mn");
  const auto plan = plan_ttgt(sim::DeviceProperties::tesla_k40c(), spec,
                              Shape({16, 24}), Shape({24, 12}));
  for (const auto& st : plan.steps) {
    if (st.what != "GEMM") {
      EXPECT_TRUE(st.skipped) << st.what;
    }
  }
}

}  // namespace
}  // namespace ttlg::ttgt
