// perfdiff: compare BENCH_*.json performance reports across builds.
//
//   perfdiff [options] <old> <new>    diff two reports or results/ dirs
//   perfdiff --check <path>...        schema-validate reports (no diff)
//
// <old>/<new> are either single BENCH_*.json files or directories, in
// which case every BENCH_*.json inside is loaded and reports are
// matched by their "bench" name. Exit codes: 0 = no regression,
// 1 = at least one case regressed beyond tolerance, 2 = usage error or
// unreadable/malformed input.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "benchlib/perfdiff.hpp"
#include "common/error.hpp"

namespace fs = std::filesystem;
using ttlg::bench::BenchFile;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitError = 2;

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: perfdiff [--tolerance FRAC] [--scale MULT] [--filter SUB]\n"
      "                [--min-geomean-speedup X] [--csv] OLD NEW\n"
      "       perfdiff --check PATH...\n"
      "\n"
      "OLD/NEW/PATH are BENCH_*.json files or directories of them.\n"
      "  --tolerance FRAC  relative slowdown treated as noise "
      "(default 0.10)\n"
      "  --scale MULT      multiply NEW times before comparing "
      "(gate self-test)\n"
      "  --filter SUB      only diff cases whose key contains SUB\n"
      "  --min-geomean-speedup X\n"
      "                    fail unless the geomean speedup over matched\n"
      "                    cases is at least X (improvement gate)\n"
      "  --csv             emit the per-case table as CSV\n"
      "  --check           schema-validate only; no baseline needed\n"
      "exit: 0 = ok, 1 = regression/unmet gate, 2 = bad input\n");
}

/// A file argument is taken as-is; a directory contributes every
/// BENCH_*.json inside (sorted, for stable output).
std::vector<std::string> expand(const std::string& arg) {
  std::error_code ec;
  if (!fs::is_directory(arg, ec)) return {arg};
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(arg, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.rfind(".json") == name.size() - 5)
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty())
    std::fprintf(stderr, "perfdiff: no BENCH_*.json files under '%s'\n",
                 arg.c_str());
  return paths;
}

/// Load every report under `arg`; false (with diagnostics) on any
/// schema violation.
bool load_all(const std::string& arg, std::vector<BenchFile>& out) {
  bool ok = true;
  for (const std::string& path : expand(arg)) {
    auto bf = ttlg::bench::try_load_bench_file(path);
    if (bf.has_value()) {
      out.push_back(std::move(bf.value()));
    } else {
      std::fprintf(stderr, "perfdiff: %s\n",
                   bf.status().to_string().c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  ttlg::bench::DiffOptions opts;
  bool csv = false;
  bool check_only = false;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perfdiff: %s needs a value\n", flag);
        std::exit(kExitError);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return kExitOk;
    } else if (arg == "--tolerance") {
      opts.tolerance = std::atof(next_value("--tolerance"));
      if (opts.tolerance < 0) {
        std::fprintf(stderr, "perfdiff: --tolerance must be >= 0\n");
        return kExitError;
      }
    } else if (arg == "--scale") {
      opts.scale = std::atof(next_value("--scale"));
      if (opts.scale <= 0) {
        std::fprintf(stderr, "perfdiff: --scale must be > 0\n");
        return kExitError;
      }
    } else if (arg == "--filter") {
      opts.filter = next_value("--filter");
    } else if (arg == "--min-geomean-speedup") {
      opts.min_geomean_speedup =
          std::atof(next_value("--min-geomean-speedup"));
      if (opts.min_geomean_speedup <= 0) {
        std::fprintf(stderr,
                     "perfdiff: --min-geomean-speedup must be > 0\n");
        return kExitError;
      }
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--check") {
      check_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "perfdiff: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return kExitError;
    } else {
      positional.push_back(arg);
    }
  }

  if (check_only) {
    if (positional.empty()) {
      usage(stderr);
      return kExitError;
    }
    bool ok = true;
    std::size_t files = 0, timed = 0;
    for (const std::string& arg : positional) {
      std::vector<BenchFile> loaded;
      ok = load_all(arg, loaded) && ok;
      for (const BenchFile& f : loaded) {
        ++files;
        timed += f.cases.size();
        std::printf("%s: bench '%s' schema v%d, %zu case(s), %zu timed\n",
                    f.path.c_str(), f.bench.c_str(), f.schema_version,
                    f.total_cases, f.cases.size());
      }
    }
    std::printf("%zu report(s) valid, %zu comparable case(s)\n", files,
                timed);
    return ok ? kExitOk : kExitError;
  }

  if (positional.size() != 2) {
    usage(stderr);
    return kExitError;
  }
  std::vector<BenchFile> base, candidate;
  if (!load_all(positional[0], base) || !load_all(positional[1], candidate))
    return kExitError;
  if (base.empty() || candidate.empty()) return kExitError;

  const auto report = ttlg::bench::diff_benches(base, candidate, opts);
  std::fputs(ttlg::bench::render_report(report, csv).c_str(), stdout);
  if (report.cases.empty()) {
    std::fprintf(stderr,
                 "perfdiff: no comparable cases between '%s' and '%s'\n",
                 positional[0].c_str(), positional[1].c_str());
    return kExitError;
  }
  return report.has_regression() ? kExitRegression : kExitOk;
}
