// ttlg — command-line front end for the library.
//
//   ttlg plan    --dims 32,16,24 --perm 2,0,1 [--float] [--analytic]
//   ttlg run     --dims 32,16,24 --perm 2,0,1 [--alpha A --beta B]
//   ttlg predict --dims 32,16,24 --perm 2,0,1
//   ttlg sweep   --dims 16,16,16,16 [--csv]
//   ttlg fuzz    [--iters N] [--seed S] [--faults spec]
//   ttlg contract --spec "iak,kbj->abij" --a 12,10,14 --b 14,9,11
//
// `run` executes functionally (data verified against the host reference)
// and reports simulated time, bandwidth and hardware-event counters.
// `fuzz` sweeps fault-injection specs against random transpositions and
// asserts every case is either bit-correct or a classified error.
#include <cstdio>
#include <numeric>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "gpusim/fault_injector.hpp"
#include "core/measure_plan.hpp"
#include "core/plan_io.hpp"
#include "gpusim/profiler.hpp"
#include "common/table.hpp"
#include "core/ttlg.hpp"
#include "telemetry/accuracy.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "service/loadgen.hpp"
#include "service/server.hpp"
#include "ttgt/contraction.hpp"

using namespace ttlg;

namespace {

PlanOptions options_from(const Cli& cli) {
  PlanOptions opts;
  opts.elem_size = cli.get_bool("float") ? 4 : 8;
  if (cli.get_bool("analytic")) opts.model = ModelKind::kAnalytic;
  opts.enable_coarsening = !cli.get_bool("no-coarsening");
  // 0 = auto (TTLG_THREADS when set, else hardware concurrency);
  // 1 = fully serial. Results are bit-identical at every setting.
  opts.num_threads = static_cast<int>(cli.get_int("threads", 0));
  return opts;
}

int cmd_plan(const Cli& cli) {
  const Shape shape(parse_int_list(cli.get("dims", "32,16,24")));
  const Permutation perm(parse_int_list(cli.get("perm", "2,0,1")));
  sim::Device dev;
  dev.set_num_threads(static_cast<int>(cli.get_int("threads", 0)));
  Plan plan;
  if (cli.get_bool("measure")) {
    MeasuredPlanStats stats;
    plan = make_plan_measured(dev, shape, perm, options_from(cli), &stats);
    std::printf("%s\n", plan.describe().c_str());
    std::printf("measured %lld candidates (%.3f ms simulated device time)\n",
                static_cast<long long>(stats.candidates_executed),
                stats.measure_device_s * 1e3);
  } else {
    plan = make_plan(dev, shape, perm, options_from(cli));
    std::printf("%s\n", plan.describe().c_str());
    std::printf("planning wall time: %.3f ms\n", plan.plan_wall_s() * 1e3);
    std::printf("candidates considered: %lld\n",
                static_cast<long long>(
                    plan.selection().candidates_considered));
  }
  const std::string save = cli.get("save", "");
  if (!save.empty()) {
    std::ofstream out(save);
    TTLG_CHECK(out.good(), "cannot open '" + save + "' for writing");
    save_plan(out, plan);
    std::printf("saved plan to %s\n", save.c_str());
  }
  return 0;
}

template <class T>
int run_typed(const Cli& cli, const Shape& shape, const Permutation& perm,
              const PlanOptions& opts) {
  sim::Device dev;
  dev.set_num_threads(opts.num_threads);
  Tensor<T> host(shape);
  host.fill_iota();
  auto in = dev.alloc_copy<T>(host.vec());
  auto out = dev.alloc<T>(shape.volume());
  Plan plan;
  const std::string load = cli.get("load", "");
  if (!load.empty()) {
    std::ifstream file(load);
    TTLG_CHECK(file.good(), "cannot open plan file '" + load + "'");
    plan = load_plan(dev, file);
    TTLG_CHECK(plan.problem().shape == shape &&
                   plan.problem().perm == perm,
               "loaded plan is for a different transposition");
  } else {
    plan = make_plan(dev, shape, perm, opts);
  }
  const T alpha = static_cast<T>(cli.get_double("alpha", 1.0));
  const T beta = static_cast<T>(cli.get_double("beta", 0.0));
  const auto res = plan.execute<T>(in, out, alpha, beta);

  std::printf("%s\n", plan.describe().c_str());
  std::printf("simulated kernel time: %.4f ms  ->  %.1f GB/s\n",
              res.time_s * 1e3,
              achieved_bandwidth_gbps(shape.volume(), sizeof(T), res.time_s));
  std::printf("counters: %s\n", res.counters.to_string().c_str());
  if (alpha == T{1} && beta == T{0}) {
    const Tensor<T> expected = host_transpose(host, perm);
    for (Index i = 0; i < shape.volume(); ++i) {
      if (out[i] != expected.at(i)) {
        std::printf("VERIFY FAILED at %lld\n", static_cast<long long>(i));
        return 1;
      }
    }
    std::printf("verify: OK\n");
  }
  return 0;
}

int cmd_run(const Cli& cli) {
  const Shape shape(parse_int_list(cli.get("dims", "32,16,24")));
  const Permutation perm(parse_int_list(cli.get("perm", "2,0,1")));
  const PlanOptions opts = options_from(cli);
  return opts.elem_size == 4 ? run_typed<float>(cli, shape, perm, opts)
                             : run_typed<double>(cli, shape, perm, opts);
}

int cmd_predict(const Cli& cli) {
  const Shape shape(parse_int_list(cli.get("dims", "32,16,24")));
  const Permutation perm(parse_int_list(cli.get("perm", "2,0,1")));
  const auto props = sim::DeviceProperties::tesla_k40c();
  const double t =
      predict_transpose_time(props, shape, perm, options_from(cli));
  std::printf("predicted: %.4f ms  (~%.1f GB/s) on %s\n", t * 1e3,
              achieved_bandwidth_gbps(shape.volume(),
                                      options_from(cli).elem_size, t),
              props.name.c_str());
  return 0;
}

int cmd_sweep(const Cli& cli) {
  const Shape shape(parse_int_list(cli.get("dims", "16,16,16,16")));
  sim::Device dev;
  dev.set_mode(sim::ExecMode::kCountOnly);
  dev.set_sampling(6);
  auto in = dev.alloc_virtual<double>(shape.volume());
  auto out = dev.alloc_virtual<double>(shape.volume());

  Table t({"perm", "schema", "kernel_ms", "bw_GBps"});
  std::vector<Index> p(static_cast<std::size_t>(shape.rank()));
  std::iota(p.begin(), p.end(), Index{0});
  do {
    const Permutation perm(p);
    Plan plan = make_plan(dev, shape, perm, options_from(cli));
    const auto res = plan.execute<double>(in, out);
    t.add_row({perm.to_string(), to_string(plan.schema()),
               Table::num(res.time_s * 1e3, 4),
               Table::num(achieved_bandwidth_gbps(shape.volume(), 8,
                                                  res.time_s),
                          1)});
  } while (std::next_permutation(p.begin(), p.end()));
  std::ostringstream os;
  if (cli.get_bool("csv")) {
    t.print_csv(os);
  } else {
    t.print(os);
  }
  std::fputs(os.str().c_str(), stdout);
  return 0;
}

int cmd_profile(const Cli& cli) {
  // Run every permutation of the given dims under one device and print
  // an nvprof-style per-kernel profile of the simulated launches.
  const Shape shape(parse_int_list(cli.get("dims", "16,16,16,16")));
  sim::Device dev;
  dev.set_mode(sim::ExecMode::kCountOnly);
  dev.set_sampling(6);
  auto in = dev.alloc_virtual<double>(shape.volume());
  auto out = dev.alloc_virtual<double>(shape.volume());
  sim::Profiler prof;
  std::vector<Index> p(static_cast<std::size_t>(shape.rank()));
  std::iota(p.begin(), p.end(), Index{0});
  do {
    Plan plan = make_plan(dev, shape, Permutation(p), options_from(cli));
    std::string kernel;
    switch (plan.schema()) {
      case Schema::kCopy:
      case Schema::kFviMatchLarge:
        kernel = "fvi_match_large";
        break;
      case Schema::kFviMatchSmall:
        kernel = "fvi_match_small";
        break;
      case Schema::kOrthogonalDistinct:
        kernel = "orthogonal_distinct";
        break;
      case Schema::kOrthogonalArbitrary:
        kernel = "orthogonal_arbitrary";
        break;
    }
    prof.record(kernel, plan.execute<double>(in, out));
  } while (std::next_permutation(p.begin(), p.end()));
  std::printf("profile over all %lld! permutations of %s\n",
              static_cast<long long>(shape.rank()),
              shape.to_string().c_str());
  std::fputs(prof.report().c_str(), stdout);
  std::printf("total simulated kernel time: %.3f ms\n",
              prof.total_time_s() * 1e3);
  return 0;
}

Shape fuzz_shape(Rng& rng) {
  const Index rank = static_cast<Index>(rng.uniform(1, 5));
  Extents ext;
  Index vol = 1;
  for (Index d = 0; d < rank; ++d) {
    Index e = static_cast<Index>(rng.uniform(1, 32));
    if (vol * e > 100000) e = 1;
    ext.push_back(e);
    vol *= e;
  }
  return Shape(ext);
}

Permutation fuzz_perm(Rng& rng, Index rank) {
  std::vector<Index> p(static_cast<std::size_t>(rank));
  std::iota(p.begin(), p.end(), Index{0});
  for (std::size_t i = p.size(); i > 1; --i)
    std::swap(p[i - 1], p[rng.uniform(0, i - 1)]);
  return Permutation(p);
}

int cmd_fuzz(const Cli& cli) {
  const int iters = static_cast<int>(cli.get_double("iters", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_double("seed", 1));
  // --faults narrows the sweep to one spec; default covers each fault
  // class in isolation plus a mixed shake.
  std::vector<std::string> specs;
  const std::string only = cli.get("faults", "");
  if (!only.empty()) {
    specs.push_back(only);
  } else {
    specs = {"seed=1,alloc.p=0.4",
             "seed=2,launch.p=0.3",
             "seed=3,tex.every=1",
             "seed=4,smem.every=2",
             "seed=5,alloc.p=0.3,launch.p=0.2,tex.p=0.3,smem.p=0.3"};
  }

  Table t({"fault spec", "cases", "clean", "recovered", "classified",
           "bad"});
  Rng rng(seed);
  int total_bad = 0;
  for (const auto& spec_text : specs) {
    sim::ScopedFaults scoped(spec_text);
    int clean = 0, recovered = 0, classified = 0, bad = 0;
    for (int iter = 0; iter < iters; ++iter) {
      const Shape shape = fuzz_shape(rng);
      const Permutation perm = fuzz_perm(rng, shape.rank());
      try {
        sim::Device dev;
        Tensor<double> host(shape);
        host.fill_iota();
        auto in = dev.alloc_copy<double>(host.vec());
        auto out = dev.alloc<double>(shape.volume());
        Plan plan = make_plan(dev, shape, perm, options_from(cli));
        plan.execute<double>(in, out);
        const Tensor<double> expected = host_transpose(host, perm);
        bool correct = true;
        for (Index i = 0; i < shape.volume(); ++i) {
          if (out[i] != expected.at(i)) {
            correct = false;
            break;
          }
        }
        if (!correct) {
          ++bad;
          std::fprintf(stderr,
                       "BAD RESULT: spec=%s dims=%s perm=%s (%s)\n",
                       spec_text.c_str(), shape.to_string().c_str(),
                       perm.to_string().c_str(), plan.describe().c_str());
        } else if (plan.degraded() ||
                   plan.last_exec_path() != ExecPath::kPlanned) {
          ++recovered;
        } else {
          ++clean;
        }
      } catch (const Error& e) {
        // A classified failure is an acceptable outcome — except an
        // internal invariant violation, which is a bug shaken loose.
        if (e.code() == ErrorCode::kInternal) {
          ++bad;
          std::fprintf(stderr, "INTERNAL ERROR: spec=%s dims=%s: %s\n",
                       spec_text.c_str(), shape.to_string().c_str(),
                       e.what());
        } else {
          ++classified;
        }
      }
    }
    t.add_row({spec_text, Table::num(iters, 0), Table::num(clean, 0),
               Table::num(recovered, 0), Table::num(classified, 0),
               Table::num(bad, 0)});
    total_bad += bad;
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("robustness.recovered counter: %lld\n",
              static_cast<long long>(
                  telemetry::MetricsRegistry::global().counter_value(
                      "robustness.recovered")));
  std::printf(total_bad == 0 ? "fuzz: OK\n" : "fuzz: %d FAILURES\n",
              total_bad);
  return total_bad == 0 ? 0 : 1;
}

int cmd_contract(const Cli& cli) {
  const auto spec = ttgt::ContractionSpec::parse(
      cli.get("spec", "iak,kbj->abij"));
  const Shape a_shape(parse_int_list(cli.get("a", "12,10,14")));
  const Shape b_shape(parse_int_list(cli.get("b", "14,9,11")));
  sim::Device dev;
  const auto plan = ttgt::plan_ttgt(dev.props(), spec, a_shape, b_shape);
  std::printf("%s\n", plan.describe().c_str());

  Tensor<double> a(a_shape), b(b_shape);
  a.fill_random(1);
  b.fill_random(2);
  const auto res = ttgt::execute_ttgt(dev, plan, a, b);
  std::printf("executed: transposes %.3f ms + GEMM %.3f ms = %.3f ms\n",
              res.transpose_s * 1e3, res.gemm_s * 1e3, res.total_s * 1e3);
  const auto ref = ttgt::contract_reference(spec, a, b);
  double max_err = 0;
  for (Index i = 0; i < ref.volume(); ++i)
    max_err = std::max(max_err, std::abs(res.c.at(i) - ref.at(i)));
  std::printf("verify: max error %.3e %s\n", max_err,
              max_err < 1e-9 ? "OK" : "FAIL");
  return max_err < 1e-9 ? 0 : 1;
}

/// Render a metrics-registry JSON snapshot as the counters / gauges /
/// histograms tables (the same shape MetricsRegistry::to_table uses,
/// including derived p50/p95/p99 per histogram).
std::string render_metrics_snapshot(const telemetry::Json& snapshot,
                                    bool csv) {
  std::ostringstream os;
  const auto print = [&](Table& t, bool rows) {
    if (!rows) return;
    if (csv)
      t.print_csv(os);
    else
      t.print(os);
  };
  if (const telemetry::Json* counters = snapshot.find("counters");
      counters != nullptr && counters->is_object()) {
    Table t({"counter", "value"});
    bool rows = false;
    for (const auto& [name, v] : counters->items()) {
      if (!v.is_number()) continue;
      t.add_row({name, Table::num(v.as_double(), 0)});
      rows = true;
    }
    print(t, rows);
  }
  if (const telemetry::Json* gauges = snapshot.find("gauges");
      gauges != nullptr && gauges->is_object()) {
    Table t({"gauge", "value"});
    bool rows = false;
    for (const auto& [name, v] : gauges->items()) {
      if (!v.is_number()) continue;
      t.add_row({name, Table::num(v.as_double(), 4)});
      rows = true;
    }
    print(t, rows);
  }
  if (const telemetry::Json* hists = snapshot.find("histograms");
      hists != nullptr && hists->is_object()) {
    Table t({"histogram", "count", "mean", "p50", "p95", "p99"});
    bool rows = false;
    for (const auto& [name, h] : hists->items()) {
      if (!h.is_object()) continue;
      const telemetry::Json* jbounds = h.find("bounds");
      const telemetry::Json* jcounts = h.find("counts");
      const telemetry::Json* jsum = h.find("sum");
      const telemetry::Json* jcount = h.find("count");
      if (!jbounds || !jcounts || !jsum || !jcount) continue;
      if (!jbounds->is_array() || !jcounts->is_array()) continue;
      if (jcounts->size() != jbounds->size() + 1) continue;
      std::vector<double> bounds;
      for (std::size_t i = 0; i < jbounds->size(); ++i)
        bounds.push_back(jbounds->at(i).as_double());
      std::vector<std::int64_t> counts;
      for (std::size_t i = 0; i < jcounts->size(); ++i)
        counts.push_back(jcounts->at(i).as_int());
      const std::int64_t n = jcount->as_int();
      const double mean = n > 0 ? jsum->as_double() / static_cast<double>(n)
                                : 0.0;
      t.add_row({name, Table::num(static_cast<double>(n), 0),
                 Table::num(mean, 4),
                 Table::num(telemetry::histogram_quantile(bounds, counts,
                                                          0.50),
                            4),
                 Table::num(telemetry::histogram_quantile(bounds, counts,
                                                          0.95),
                            4),
                 Table::num(telemetry::histogram_quantile(bounds, counts,
                                                          0.99),
                            4)});
      rows = true;
    }
    print(t, rows);
  }
  if (os.str().empty()) os << "(no metrics recorded)\n";
  return os.str();
}

int cmd_stats(const Cli& cli) {
  const std::string from = cli.get("from", "");
  telemetry::Json snapshot;
  if (!from.empty()) {
    std::ifstream in(from);
    TTLG_CHECK(in.good(), "cannot open metrics snapshot '" + from + "'");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
      snapshot = telemetry::Json::parse(text);
    } catch (const Error&) {
      TTLG_RAISE(ErrorCode::kInvalidArgument,
                 "'" + from + "' is not a JSON metrics snapshot (a .prom "
                 "snapshot is already Prometheus text — read it directly)");
    }
    TTLG_CHECK(snapshot.is_object(),
               "'" + from + "' is not a metrics snapshot (expected a JSON "
               "object with counters/gauges/histograms)");
  } else {
    snapshot = telemetry::MetricsRegistry::global().to_json();
  }
  if (cli.get_bool("prometheus")) {
    std::fputs(telemetry::to_prometheus(snapshot).c_str(), stdout);
    return 0;
  }
  std::fputs(render_metrics_snapshot(snapshot, cli.get_bool("csv")).c_str(),
             stdout);
  return 0;
}

// Overload-hardened serving demo: stand up the multi-tenant transpose
// service (docs/serving.md) and drive it with the deterministic
// load generator. Combine with --faults / TTLG_FAULTS for a chaos run.
int cmd_serve(const Cli& cli) {
  sim::Device dev;
  dev.set_num_threads(1);  // service workers are the parallel axis

  service::ServerConfig scfg;
  scfg.workers = static_cast<int>(cli.get_int("workers", 4));
  scfg.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-cap", 256));
  scfg.measured_planning = cli.get_bool("measure");
  scfg.quota.rate_per_s = static_cast<double>(cli.get_int("quota-rps", 0));
  scfg.quota.burst = static_cast<double>(cli.get_int("quota-burst", 8));
  scfg.backoff.max_retries = static_cast<int>(cli.get_int("retries", 2));
  scfg.plan = options_from(cli);

  service::LoadgenConfig lcfg;
  lcfg.requests = cli.get_int("requests", 1000);
  lcfg.tenants = static_cast<int>(cli.get_int("tenants", 4));
  lcfg.clients = static_cast<int>(cli.get_int("clients", 4));
  lcfg.outstanding = static_cast<int>(cli.get_int("outstanding", 16));
  lcfg.distinct_shapes = static_cast<int>(cli.get_int("shapes", 6));
  lcfg.deadline_us = cli.get_int("deadline-us", 0);
  lcfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  service::Server server(dev, scfg);
  server.start();
  const auto report = service::run_load(server, lcfg);
  server.stop();
  const auto counts = server.counts();
  const auto cache = server.cache().stats();

  std::printf("served %lld / %lld requests (%lld submits incl. %lld client"
              " retries) in %.3f s\n",
              static_cast<long long>(report.served),
              static_cast<long long>(report.completed),
              static_cast<long long>(report.issued),
              static_cast<long long>(report.client_retries), report.wall_s);
  std::printf("  outcomes: shed=%lld expired=%lld failed=%lld"
              " mismatches=%lld\n",
              static_cast<long long>(report.shed),
              static_cast<long long>(report.expired),
              static_cast<long long>(report.failed),
              static_cast<long long>(report.mismatches));
  std::printf("  server: admitted=%lld shed_queue=%lld shed_quota=%lld"
              " expired(adm/q/exec)=%lld/%lld/%lld failed=%lld"
              " retries=%lld\n",
              static_cast<long long>(counts.admitted),
              static_cast<long long>(counts.shed_queue_full),
              static_cast<long long>(counts.shed_quota),
              static_cast<long long>(counts.expired_admission),
              static_cast<long long>(counts.expired_queue),
              static_cast<long long>(counts.expired_exec),
              static_cast<long long>(counts.failed),
              static_cast<long long>(counts.retries));
  std::printf("  plans: cache hits=%lld misses=%lld (%.1f plans/s)\n",
              static_cast<long long>(cache.hits),
              static_cast<long long>(cache.misses),
              report.wall_s > 0
                  ? static_cast<double>(cache.misses) / report.wall_s
                  : 0.0);
  std::printf("  latency p50/p95/p99: %lld / %lld / %lld us\n",
              static_cast<long long>(report.latency_quantile_us(0.50)),
              static_cast<long long>(report.latency_quantile_us(0.95)),
              static_cast<long long>(report.latency_quantile_us(0.99)));
  TTLG_CHECK(report.completed == lcfg.requests,
             "every submitted request must terminate");
  TTLG_CHECK(report.mismatches == 0,
             "served outputs must match the host oracle");
  return 0;
}

int dispatch(const std::string& cmd, const Cli& cli) {
  if (cmd == "plan") return cmd_plan(cli);
  if (cmd == "run") return cmd_run(cli);
  if (cmd == "predict") return cmd_predict(cli);
  if (cmd == "sweep") return cmd_sweep(cli);
  if (cmd == "profile") return cmd_profile(cli);
  if (cmd == "fuzz") return cmd_fuzz(cli);
  if (cmd == "contract") return cmd_contract(cli);
  if (cmd == "stats") return cmd_stats(cli);
  if (cmd == "serve") return cmd_serve(cli);
  std::printf(
      "ttlg <command> [flags]\n"
      "  plan     --dims d0,d1,... --perm p0,p1,...   show the chosen kernel\n"
      "  run      --dims ... --perm ... [--alpha A --beta B] [--float]\n"
      "  predict  --dims ... --perm ...               model query only\n"
      "  sweep    --dims ...                          all permutations\n"
      "  profile  --dims ...                          per-kernel profile\n"
      "  fuzz     [--iters N] [--seed S]              fault-injection sweep\n"
      "  contract --spec \"iak,kbj->abij\" --a ... --b ...   TTGT demo\n"
      "  stats    [--from <snapshot.json>] [--prometheus]   metrics tables\n"
      "  serve    [--requests N --tenants T --clients C --workers W\n"
      "            --queue-cap Q --quota-rps R --quota-burst B\n"
      "            --deadline-us D --retries K --outstanding O --shapes S\n"
      "            --seed S --measure]       overload-hardened service demo\n"
      "Common flags: --float, --analytic, --no-coarsening, --csv,\n"
      "              --measure, --save <file> (plan), --load <file> (run),\n"
      "              --threads N (host threads; 0 = auto from TTLG_THREADS\n"
      "              or hardware concurrency, 1 = serial; results are\n"
      "              bit-identical at every setting),\n"
      "              --telemetry off|counters|trace, --trace-out <file>,\n"
      "              --faults <spec> (fault injection, same grammar as\n"
      "              TTLG_FAULTS, e.g. \"seed=7,alloc.p=0.25,launch.nth=3\")\n"
      "Observability env: TTLG_LOG_LEVEL, TTLG_LOG_FILE, TTLG_FLIGHT_DUMP_DIR,\n"
      "              TTLG_METRICS_SNAPSHOT (.json or .prom; periodic, see\n"
      "              TTLG_METRICS_SNAPSHOT_PERIOD_MS) — docs/observability.md\n");
  return cmd == "help" ? 0 : 2;
}

/// Post-command telemetry dump: the planner-decision trace (chrome://
/// tracing JSON) at trace level, plus the counters table and the model
/// accuracy report at counters level and above.
void finish_telemetry(const Cli& cli) {
  if (telemetry::trace_enabled() && !telemetry::TraceCollector::global().empty()) {
    const std::string path = cli.get("trace-out", "ttlg_trace.json");
    telemetry::TraceCollector::global().write_file(path);
    std::printf("\nwrote trace (%zu events) to %s — load in chrome://tracing\n",
                telemetry::TraceCollector::global().size(), path.c_str());
  }
  if (telemetry::counters_enabled() &&
      !telemetry::MetricsRegistry::global().empty()) {
    std::printf("\n== telemetry counters ==\n%s",
                telemetry::MetricsRegistry::global().to_table().c_str());
  }
  if (telemetry::counters_enabled() && !telemetry::ModelAccuracy::global().empty()) {
    std::printf("\n== model accuracy (predicted vs measured) ==\n%s",
                telemetry::ModelAccuracy::global().report().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string cmd =
      cli.positional().empty() ? "help" : cli.positional().front();
  int rc = 2;
  try {
    const std::string telem = cli.get("telemetry", "");
    if (!telem.empty()) {
      const auto lvl = telemetry::parse_level(telem);
      TTLG_CHECK(lvl.has_value(),
                 "--telemetry must be off, counters or trace (got '" + telem +
                     "')");
      telemetry::set_level(*lvl);
    }
    // --faults installs a process-wide spec for the whole command; the
    // fuzz subcommand additionally scopes per-sweep specs on top.
    const std::string faults = cli.get("faults", "");
    if (!faults.empty() && cmd != "fuzz")
      sim::FaultInjector::global().configure(faults);
    // TTLG_METRICS_SNAPSHOT starts the periodic exporter for any
    // subcommand; stop() below flushes the terminal snapshot.
    telemetry::SnapshotWriter::maybe_start_from_env();
    rc = dispatch(cmd, cli);
    finish_telemetry(cli);
    telemetry::SnapshotWriter::global().stop();
  } catch (const Error& e) {
    std::fprintf(stderr, "error [%s]: %s\n", to_string(e.code()), e.what());
    return 2;
  }
  return rc;
}
